"""Step-driven LLM serving engine (the vLLM analog).

The engine advances a virtual clock: each iteration admits requests
through the continuous-batching scheduler, charges a prefill phase for
newly admitted prompts, then one decode step for the whole running
batch, using the bound :class:`~repro.models.llama.LlamaCostModel` and
the selected decode-attention implementation.  TTFT and TPOT fall out
of the per-request timestamps, which is how Figure 17(d, e) is
regenerated.

With a :class:`ResiliencePolicy` (and optionally a
:class:`~repro.faults.injector.FaultInjector`) bound, the engine
degrades gracefully instead of crashing: requests that can never fit
the KV pool are shed with a reason, TTFT deadlines trigger client-style
retries with exponential backoff, device faults preempt the running
batch into checkpointed recompute, and transient kernel failures cost a
wasted step rather than the run.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.audit import (
    ConfigError,
    KvConservationError,
    Watchdog,
    WatchdogExceeded,
    get_auditor,
)
from repro.hw.power import ActivityAccumulator, PowerModel
from repro.models.llama import DecodeAttention, DecodeBatchStats, LlamaCostModel
from repro.serving.engine_core import (
    SLOT_FAILED,
    SLOT_FINISHED,
    SLOT_RUNNING,
    SLOT_SHED,
    SLOT_WAITING,
    EngineCore,
    ReportAggregates,
    bump_counter,
)
from repro.serving.kv_cache import BlockManager, KvCacheError
from repro.serving.request import DEFAULT_TIER, Request, RequestState, RetryPolicy
from repro.serving.scheduler import ContinuousBatchingScheduler

#: Default KV block size in tokens (matches the paged-attention kernel).
DEFAULT_BLOCK_SIZE = 128

#: Accepted ``engine_mode`` / ``REPRO_ENGINE`` values.
_ENGINE_MODES = ("auto", "vectorized", "scalar")


@dataclass(frozen=True)
class ResiliencePolicy:
    """Graceful-degradation knobs for one serving run.

    ``deadline`` is a TTFT SLO in seconds: a request still waiting past
    it is retried (client-style, with exponential backoff per
    ``retry``) and finally shed.  ``checkpoint_interval`` bounds the
    recompute after a device fault; ``admission_watermark`` keeps a
    fraction of the KV pool free for decode growth.
    """

    shed_on_exhaustion: bool = True
    deadline: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    checkpoint_interval: int = 32
    admission_watermark: float = 1.0

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")


@dataclass
class FaultStats:
    """Counters of degradation events during one run."""

    device_failures: int = 0
    device_recoveries: int = 0
    fault_preemptions: int = 0
    kernel_retries: int = 0
    deadline_retries: int = 0
    recovered_requests: int = 0


@dataclass(frozen=True)
class ServingReport:
    """Aggregate metrics of one serving run.

    Latency means are computed over *finished* requests only;
    ``num_requests`` counts everything submitted, partitioned into
    finished / shed / failed / unfinished.
    """

    device: str
    attention: str
    num_requests: int
    max_decode_batch: int
    total_time: float
    total_output_tokens: int
    mean_ttft: float
    mean_tpot: float
    average_power: float
    engine_steps: int
    preemptions: int
    finished_requests: int = 0
    shed_requests: int = 0
    failed_requests: int = 0
    unfinished_requests: int = 0
    retried_requests: int = 0
    kernel_retries: int = 0
    device_failures: int = 0
    #: Non-empty when a :class:`~repro.audit.Watchdog` stopped the run
    #: early -- the report is then a typed *partial* result.
    watchdog_reason: str = ""

    @property
    def watchdog_tripped(self) -> bool:
        return bool(self.watchdog_reason)

    @property
    def throughput_tokens_per_s(self) -> float:
        return self.total_output_tokens / self.total_time if self.total_time > 0 else 0.0

    @property
    def requests_per_s(self) -> float:
        return self.num_requests / self.total_time if self.total_time > 0 else 0.0

    @property
    def energy_per_token(self) -> float:
        if self.total_output_tokens == 0:
            return 0.0
        return self.average_power * self.total_time / self.total_output_tokens

    @property
    def completion_rate(self) -> float:
        """Fraction of submitted requests served to completion."""
        return self.finished_requests / self.num_requests if self.num_requests else 0.0

    # -- Report protocol ----------------------------------------------
    def to_dict(self) -> dict:
        """All fields plus the derived rates, as one plain dict."""
        return {
            "device": self.device,
            "attention": self.attention,
            "num_requests": self.num_requests,
            "max_decode_batch": self.max_decode_batch,
            "total_time": round(self.total_time, 9),
            "total_output_tokens": self.total_output_tokens,
            "throughput_tokens_per_s": round(self.throughput_tokens_per_s, 6),
            "requests_per_s": round(self.requests_per_s, 6),
            "mean_ttft": round(self.mean_ttft, 9),
            "mean_tpot": round(self.mean_tpot, 9),
            "average_power": round(self.average_power, 3),
            "energy_per_token": round(self.energy_per_token, 9),
            "engine_steps": self.engine_steps,
            "preemptions": self.preemptions,
            "finished_requests": self.finished_requests,
            "shed_requests": self.shed_requests,
            "failed_requests": self.failed_requests,
            "unfinished_requests": self.unfinished_requests,
            "retried_requests": self.retried_requests,
            "kernel_retries": self.kernel_retries,
            "device_failures": self.device_failures,
            "completion_rate": round(self.completion_rate, 6),
            "watchdog_reason": self.watchdog_reason,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServingReport":
        """Rebuild a report from its :meth:`to_dict` payload (derived
        rates are recomputed, not read back) -- the journal-resume path
        for sweep points."""
        return cls(
            device=data["device"],
            attention=data["attention"],
            num_requests=int(data["num_requests"]),
            max_decode_batch=int(data["max_decode_batch"]),
            total_time=float(data["total_time"]),
            total_output_tokens=int(data["total_output_tokens"]),
            mean_ttft=float(data["mean_ttft"]),
            mean_tpot=float(data["mean_tpot"]),
            average_power=float(data["average_power"]),
            engine_steps=int(data["engine_steps"]),
            preemptions=int(data["preemptions"]),
            finished_requests=int(data.get("finished_requests", 0)),
            shed_requests=int(data.get("shed_requests", 0)),
            failed_requests=int(data.get("failed_requests", 0)),
            unfinished_requests=int(data.get("unfinished_requests", 0)),
            retried_requests=int(data.get("retried_requests", 0)),
            kernel_retries=int(data.get("kernel_retries", 0)),
            device_failures=int(data.get("device_failures", 0)),
            watchdog_reason=str(data.get("watchdog_reason", "")),
        )

    def to_json(self) -> str:
        """The report as a JSON document."""
        import json

        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_csv(self) -> str:
        """The report as one CSV row."""
        from repro.api.report import rows_to_csv

        return rows_to_csv([self.to_dict()])

    def render(self) -> str:
        """Fixed-format text report (byte-identical per seed)."""
        lines = [
            f"Serving report: {self.device} "
            f"({self.attention}, max decode batch {self.max_decode_batch})",
            f"  requests   : {self.num_requests} submitted | "
            f"{self.finished_requests} finished | {self.shed_requests} shed | "
            f"{self.failed_requests} failed | {self.unfinished_requests} unfinished",
            f"  throughput : {self.throughput_tokens_per_s:.0f} tokens/s over "
            f"{self.total_time:.4f} s ({self.total_output_tokens} tokens)",
        ]
        if self.finished_requests == 0:
            lines.append("  latency    : no finished requests")
        else:
            lines.append(f"  mean TTFT  : {self.mean_ttft:.3f} s")
            lines.append(f"  mean TPOT  : {self.mean_tpot * 1e3:.1f} ms")
        lines += [
            f"  power      : {self.average_power:.0f} W",
            f"  energy     : {self.energy_per_token * 1e3:.2f} mJ/token",
            f"  engine     : {self.engine_steps} steps | {self.preemptions} "
            f"preemptions | {self.kernel_retries} kernel retries",
        ]
        if self.watchdog_reason:
            lines.append(f"  watchdog   : PARTIAL RESULT ({self.watchdog_reason})")
        return "\n".join(lines)


class LlmServingEngine:
    """Serves batches of requests over a Llama cost model."""

    def __init__(
        self,
        model: LlamaCostModel,
        attention: DecodeAttention = DecodeAttention.PAGED_OPT,
        max_decode_batch: int = 64,
        block_size: int = DEFAULT_BLOCK_SIZE,
        num_kv_blocks: Optional[int] = None,
        policy: Optional[ResiliencePolicy] = None,
        injector: Optional[object] = None,
        ctx: Optional[object] = None,
        auditor: Optional[object] = None,
        watchdog: Optional[object] = None,
        engine_mode: str = "auto",
        retain_requests: bool = True,
    ) -> None:
        """``injector`` is a :class:`~repro.faults.injector.FaultInjector`
        (duck-typed so the serving layer stays import-independent of
        :mod:`repro.faults`).  ``ctx`` is a
        :class:`~repro.api.RunContext`; with one bound, the run records
        hierarchical spans on the virtual clock and ``engine.*`` /
        ``kv.*`` / ``scheduler.*`` / ``power.*`` metrics (see
        :meth:`bind_context`).  ``auditor`` overrides the process
        auditor (``REPRO_AUDIT``); ``watchdog`` is a
        :class:`~repro.audit.Watchdog` bounding the run by steps/wall
        time -- tripping it yields a typed partial report instead of a
        wedged simulation.

        ``engine_mode`` selects the stepping core: ``"scalar"`` walks
        per-request objects (the reference semantics), ``"vectorized"``
        runs the struct-of-arrays fast path (and raises
        :class:`~repro.audit.ConfigError` when a bound policy / injector
        / watchdog / tracer makes it ineligible), and ``"auto"`` --
        overridable via ``REPRO_ENGINE`` -- picks the fast path whenever
        it is eligible.  Both cores produce byte-identical reports.
        ``retain_requests=False`` folds terminal requests into constant-
        memory aggregates instead of keeping every object alive, which
        is what makes million-request streaming runs possible; latency
        means are then accumulated in retirement order (ulp-level
        differences from the retained path) and the run is excluded from
        byte-golden comparisons."""
        self.model = model
        self.attention = attention
        if num_kv_blocks is None:
            capacity_tokens = model.max_kv_tokens()
            num_kv_blocks = max(1, capacity_tokens // block_size)
        self.block_manager = BlockManager(num_kv_blocks, block_size)
        self.policy = policy
        self.injector = injector
        self.auditor = auditor if auditor is not None else get_auditor()
        self.watchdog = watchdog if watchdog is not None else Watchdog.from_env()
        self.block_manager.bind_auditor(self.auditor)
        self.scheduler = ContinuousBatchingScheduler(
            self.block_manager,
            max_decode_batch,
            admission_watermark=policy.admission_watermark if policy else 1.0,
        )
        self.max_decode_batch = max_decode_batch
        self.fault_stats = FaultStats()
        self._fault_restarted_ids: set = set()
        self._power_model = PowerModel(self.model.device.spec.power)
        self.ctx = None
        self._tracer = None
        self._metrics = None
        self._traced_request_ids: set = set()
        # Streaming-run state (see begin/feed/advance/finish).
        self._audit = None
        self._now = 0.0
        self._steps = 0
        self._preemptions = 0
        self._activity: Optional[ActivityAccumulator] = None
        self._batch_stats: Optional[DecodeBatchStats] = None
        self._batch_version = -1
        self._all_requests: List[Request] = []
        if engine_mode not in _ENGINE_MODES:
            raise ConfigError(
                f"engine_mode must be one of {_ENGINE_MODES}, got {engine_mode!r}"
            )
        self.engine_mode = engine_mode
        self.retain_requests = retain_requests
        self._fast = False
        self._core: Optional[EngineCore] = None
        self._aggregates: Optional[ReportAggregates] = None
        self._max_fed_arrival = 0.0
        self._request_deadlines = False
        if ctx is not None:
            self.bind_context(ctx)

    def bind_context(self, ctx) -> None:
        """Bind a :class:`~repro.api.RunContext` (or None to unbind),
        propagating its tracer/metrics to the scheduler, KV block
        manager, and tensor-parallel collective hooks."""
        self.ctx = ctx
        self._tracer = ctx.tracer if ctx is not None else None
        self._metrics = ctx.metrics if ctx is not None else None
        self.scheduler.bind_observability(self._tracer, self._metrics)
        self.block_manager.bind_metrics(self._metrics)
        self.model.tp.bind_observability(
            self._metrics, queue_events=self._tracer is not None
        )

    # -- observability helpers -----------------------------------------
    def _trace_request_begin(self, request: Request, now: float) -> None:
        """Open the per-request async span on first admission."""
        if self._tracer is None or request.request_id in self._traced_request_ids:
            return
        self._traced_request_ids.add(request.request_id)
        self._tracer.async_begin(
            f"request-{request.request_id}",
            "request",
            min(request.arrival_time, now),
            request.request_id,
            prompt_tokens=request.input_tokens,
        )

    def _emit_comm_spans(self, end: float) -> None:
        """Lay the collectives queued during the last model phase as
        back-to-back spans ending at ``end``.

        The cost model reports AllReduce durations, not timestamps, so
        the spans are reconstructed at the tail of the phase window --
        which is where they sit in a real execution: the activation
        AllReduce follows the sharded matmuls it synchronises."""
        tracer = self._tracer
        if tracer is None:
            return
        events = self.model.tp.drain_comm_events()
        if not events:
            return
        library = self.model.tp.library
        prefix = (
            type(library).__name__.replace("Library", "").lower()
            if library is not None
            else "comm"
        )
        start = end - sum(seconds for _, seconds, _ in events)
        for op, seconds, size_bytes in events:
            tracer.record(
                f"{prefix}.{op}",
                "collective",
                start,
                start + seconds,
                size_bytes=size_bytes,
            )
            start += seconds

    def _finish_step(
        self,
        step_span: Optional[object],
        step_start: float,
        now: float,
        step_activity: Optional[ActivityAccumulator],
        batch_size: int,
    ) -> None:
        """Close one iteration's span and record its samples: a power
        span on the ``power`` track, counter tracks for watts / KV
        occupancy / batch size, and the per-step metrics."""
        tracer = self._tracer
        metrics = self._metrics
        if tracer is None and metrics is None:
            return
        duration = now - step_start
        watts = 0.0
        if step_activity is not None and duration > 0:
            watts = self._power_model.power(step_activity.profile(duration))
        stats = self.block_manager.stats()
        if tracer is not None:
            tracer.record(
                "power.sample", "power", step_start, now, watts=round(watts, 3)
            )
            tracer.counter("power.watts", now, round(watts, 3))
            tracer.counter("kv.allocated_blocks", now, stats.allocated_blocks)
            tracer.counter("batch.running", now, batch_size)
            if step_span is not None:
                tracer.end(step_span, now, batch=batch_size)
        if metrics is not None:
            metrics.counter("engine.steps").inc()
            metrics.histogram("engine.batch_size").observe(batch_size)
            metrics.histogram("power.watts").observe(watts)
            metrics.gauge("kv.allocated_blocks").set(stats.allocated_blocks)
            if step_activity is not None:
                step_activity.record_to(metrics)

    @property
    def _graceful(self) -> bool:
        return self.policy is not None and self.policy.shed_on_exhaustion

    # -- streaming run API ---------------------------------------------
    # ``run()`` packages the canonical one-shot flow; the four-phase
    # API below (begin / feed / advance / finish) lets an external
    # event loop -- a cluster Node on the shared fleet clock -- embed
    # the engine, feeding requests as a gateway routes them and
    # advancing the simulation in bounded horizons.

    def _fast_block_reason(self) -> str:
        """Why the vectorized core cannot serve this configuration
        (empty string = eligible).  Fault paths, SLO policies, watchdogs
        and per-step observability all need the per-iteration object
        walk, so they pin the run to the scalar core."""
        if self.policy is not None:
            return "a ResiliencePolicy is bound"
        if self.injector is not None:
            return "a FaultInjector is bound"
        if self.watchdog is not None:
            return "a Watchdog is armed"
        if self._tracer is not None or self._metrics is not None:
            return "tracing/metrics observability is bound"
        return ""

    def _resolve_engine_mode(self) -> bool:
        """True when this run uses the vectorized core.

        An explicit constructor ``engine_mode`` wins; ``"auto"`` defers
        to ``REPRO_ENGINE`` and finally to eligibility.  Requesting
        ``"vectorized"`` via the constructor on an ineligible engine is
        a hard :class:`ConfigError`; via the environment it degrades to
        the scalar core (the env var is a fleet-wide soft preference).
        """
        mode = self.engine_mode
        if mode == "auto":
            env = os.environ.get("REPRO_ENGINE", "").strip().lower()
            if env and env not in _ENGINE_MODES:
                raise ConfigError(
                    f"REPRO_ENGINE must be one of {_ENGINE_MODES}, got {env!r}"
                )
            if env == "scalar":
                return False
            return not self._fast_block_reason()
        if mode == "scalar":
            return False
        reason = self._fast_block_reason()
        if reason:
            raise ConfigError(
                f"engine_mode='vectorized' is unavailable: {reason}; "
                "use 'auto' or 'scalar'"
            )
        return True

    def begin(self, requests: Sequence[Request] = ()) -> None:
        """Open a run: arm the audit ledger and watchdog, start the
        root span, and submit any up-front ``requests``."""
        self._fast = self._resolve_engine_mode()
        self._core = (
            EngineCore(self.block_manager.num_blocks, self.block_manager.block_size)
            if self._fast
            else None
        )
        self._aggregates = None if self.retain_requests else ReportAggregates()
        self.scheduler.on_retire = (
            self._fold_terminal
            if (self._aggregates is not None and not self._fast)
            else None
        )
        self._max_fed_arrival = 0.0
        self._request_deadlines = any(r.deadline is not None for r in requests)
        bump_counter("vectorized_runs" if self._fast else "scalar_runs")
        self._audit = self.auditor.begin_run("serving.run") if self.auditor else None
        self.scheduler.bind_audit(self._audit)
        if self._audit is not None:
            self._audit.set_token_baseline(sum(r.generated for r in requests))
        if self.watchdog is not None:
            self.watchdog.start()
        self._now = 0.0
        self._steps = 0
        self._preemptions = 0
        self._activity = ActivityAccumulator()
        # Incremental decode-batch statistics: valid while the running
        # batch's membership is unchanged (scheduler.mutation_count) and
        # every runner grew by exactly one token since they were built.
        self._batch_stats: Optional[DecodeBatchStats] = None
        self._batch_version = -1
        self._all_requests: List[Request] = []
        if self._tracer is not None:
            self._tracer.begin(
                "serving.run", "engine", self._now,
                device=self.model.device.name,
                attention=self.attention.value,
                requests=len(requests),
            )
        for request in requests:
            self.feed(request)

    def feed(self, request: Request) -> None:
        """Submit one request to an open run (streaming admission)."""
        if self.policy and self.policy.deadline is not None and request.deadline is None:
            request.deadline = self.policy.deadline
        if self._audit is not None and request.generated:
            # Late-fed requests extend the conservation baseline.
            self._audit.set_token_baseline(
                self._audit._token_baseline + request.generated
            )
        if request.arrival_time > self._max_fed_arrival:
            self._max_fed_arrival = request.arrival_time
        if request.deadline is not None:
            self._request_deadlines = True
        if self._aggregates is not None:
            self._aggregates.note_fed(request)
        if self.retain_requests:
            self._all_requests.append(request)
        if self._fast:
            self._feed_fast(request)
        else:
            self._submit(request)

    def _feed_fast(self, request: Request) -> None:
        """Fast-path submission: the scheduler's legality checks against
        the slot arrays, then slot acquisition (no policy in fast mode,
        so an oversized prompt fails hard exactly like the scalar
        no-policy path)."""
        if request.state is not RequestState.WAITING:
            raise ValueError(f"request {request.request_id} is not schedulable")
        if request.tier != DEFAULT_TIER:
            raise ConfigError(
                f"request {request.request_id} has tier {request.tier}, but "
                "the vectorized core admits in pure arrival order; run "
                "tiered traffic on the scalar core (engine_mode='scalar' "
                "or bind a ResiliencePolicy)"
            )
        needed = self.block_manager.blocks_needed(request.input_tokens)
        if needed > self.block_manager.num_blocks:
            raise KvCacheError(
                f"request {request.request_id}'s prompt needs {needed} KV "
                f"blocks but the pool only has {self.block_manager.num_blocks}; "
                "it can never be scheduled"
            )
        self._core.acquire(request)

    def _fold_terminal(self, request: Request) -> None:
        """Retirement hook for ``retain_requests=False`` runs."""
        if self._aggregates is not None:
            self._aggregates.fold_terminal(request)

    @property
    def now(self) -> float:
        """Current virtual time of the open run."""
        return self._now

    @property
    def requests(self) -> List[Request]:
        """Every request fed to the current run, in feed order (empty
        when ``retain_requests=False`` -- terminal requests are folded
        into aggregates instead of retained)."""
        return list(self._all_requests)

    @property
    def has_unfinished(self) -> bool:
        if self._fast and self._core is not None:
            return self._core.has_unfinished
        return self.scheduler.has_unfinished

    def advance(self, horizon: float = math.inf) -> float:
        """Drive the step loop while work remains and steps start at or
        before ``horizon``; returns the clock.

        A step that *starts* within the horizon executes to completion
        (the batch-synchronous clock cannot split an iteration), so the
        returned time may overrun ``horizon`` -- callers observe
        completions at the next advance, exactly like polling a real
        engine between scheduler ticks.  Raises
        :class:`~repro.audit.WatchdogExceeded` when the armed watchdog
        budget is exhausted (``run()`` converts that into a typed
        partial report).
        """
        if self._fast:
            return self._advance_fast(horizon)
        audit = self._audit
        watchdog = self.watchdog
        tracer = self._tracer
        observing = tracer is not None or self._metrics is not None
        while self.scheduler.has_unfinished:
            if self._now > horizon:
                break
            if watchdog is not None:
                watchdog.check(self._steps)
            now = self._advance_faults(self._now)
            if audit is not None:
                audit.observe_clock(now)
            self._enforce_deadlines(now)
            schedule = self.scheduler.step(now)
            if not schedule.has_work:
                self._now = now
                if not self.scheduler.waiting:
                    break  # everything retired in this step
                head = self.scheduler.next_blocked(now)
                if head is not None:
                    # Nothing runs, nothing admits, and the highest-
                    # priority arrived request is blocked: the pool can
                    # never serve it.
                    reason = (
                        f"kv-exhausted: {head.context_len} prompt tokens exceed "
                        "the free KV pool with no running request to retire"
                    )
                    if self._graceful:
                        self.scheduler.shed(head, reason)
                        continue
                    raise KvCacheError(
                        f"request {head.request_id} cannot be admitted: {reason}"
                    )
                next_arrival = self.scheduler.next_arrival()
                if next_arrival > horizon:
                    break  # idle until past the horizon; do not jump it
                # All remaining requests arrive later; jump the clock.
                self._now = max(now, next_arrival)
                continue
            slowdown = self._slowdown()
            step_start = now
            step_span = None
            step_activity = None
            if observing:
                step_activity = ActivityAccumulator()
            if tracer is not None:
                step_span = tracer.begin(
                    "engine.step", "engine", now,
                    step=self._steps, admitted=len(schedule.new_requests),
                )
            for request in schedule.new_requests:
                # vLLM prefills prompts individually (no padding waste).
                # A fault-restarted request recomputes its checkpointed
                # tokens too, hence context_len rather than input_tokens.
                prefill_span = None
                if tracer is not None:
                    self._trace_request_begin(request, now)
                    prefill_span = tracer.begin(
                        "prefill", "engine", now,
                        request_id=request.request_id,
                        prompt_tokens=request.context_len,
                    )
                phase = self.model.prefill(1, request.context_len)
                now += phase.time * slowdown
                self._activity.merge(phase.activity)
                if step_activity is not None:
                    step_activity.merge(phase.activity)
                    self._emit_comm_spans(now)
                if prefill_span is not None:
                    tracer.end(prefill_span, now)
                request.record_token(now)
                if audit is not None:
                    audit.on_tokens_emitted()
                self._maybe_checkpoint(request)
            running = [r for r in schedule.running if r.state is RequestState.RUNNING]
            if not running:
                self._steps += 1
                self._now = now
                if observing:
                    self._finish_step(step_span, step_start, now, step_activity, 0)
                continue
            self._preemptions += self._ensure_headroom(running)
            running = [r for r in running if r.state is RequestState.RUNNING]
            if not running:
                self._steps += 1
                self._now = now
                if observing:
                    self._finish_step(step_span, step_start, now, step_activity, 0)
                continue
            decode_span = None
            if tracer is not None:
                decode_span = tracer.begin(
                    "decode.step", "engine", now, batch=len(running)
                )
            version = self.scheduler.mutation_count
            if (
                self._batch_stats is None
                or self._batch_version != version
                or self._batch_stats.batch != len(running)
            ):
                self._batch_stats = DecodeBatchStats.from_context_lens(
                    [r.context_len for r in running]
                )
                self._batch_version = version
            phase = self.model.decode_step_stats(self._batch_stats, self.attention)
            now += phase.time * slowdown
            self._activity.merge(phase.activity)
            if step_activity is not None:
                step_activity.merge(phase.activity)
                self._emit_comm_spans(now)
            if decode_span is not None:
                tracer.end(decode_span, now)
            self._steps += 1
            self._now = now
            if self.injector is not None and self.injector.kernel_fault():
                # Transient kernel failure: the step's output is lost
                # and recomputed next iteration; the time still passed.
                # No runner grew, so batch_stats stays valid as-is.
                self.fault_stats.kernel_retries += 1
                if tracer is not None:
                    tracer.instant("kernel_fault", "engine", now)
                if self._metrics is not None:
                    self._metrics.counter("engine.kernel_retries").inc()
                if observing:
                    self._finish_step(step_span, step_start, now, step_activity, len(running))
                continue
            grew_all = True
            for request in running:
                if not self._grow_kv(request):
                    grew_all = False
                    continue
                request.record_token(now)
                if audit is not None:
                    audit.on_tokens_emitted()
                self._maybe_checkpoint(request)
            if grew_all and self.scheduler.mutation_count == self._batch_version:
                # Every runner gained exactly one token: advance the
                # batch statistics in O(1) instead of rebuilding.
                self._batch_stats = self._batch_stats.advanced()
            else:
                self._batch_stats = None
            if observing:
                self._finish_step(step_span, step_start, now, step_activity, len(running))
        return self._now

    # -- vectorized fast path ------------------------------------------
    def _advance_fast(self, horizon: float, sync_exit: bool = True) -> float:
        """The struct-of-arrays twin of :meth:`advance`.

        One outer iteration mirrors one (or many) scalar iterations: a
        virtual scheduler step (retire, then admit) against the slot
        arrays, sequential prefills for admissions, capacity preemption,
        then a *decode burst* -- consecutive decode steps priced against
        integer context aggregates until the next membership-changing
        event.  Request objects are only touched at lifecycle events and
        re-synchronized on exit, so callers observe the exact scalar
        semantics.  ``sync_exit=False`` skips that exit sync -- only for
        engine-internal loops (:meth:`run_streaming`) where nothing can
        observe live request objects before the next advance or
        :meth:`finish` syncs them.
        """
        core = self._core
        audit = self._audit
        model = self.model
        max_batch = self.max_decode_batch
        inp = core.input_tokens
        out = core.output_tokens
        gen = core.generated
        first = core.first_token
        finish = core.finish
        arrival = core.arrival
        state = core.state
        run_slots = core.run_slots
        activity = self._activity
        while core.has_unfinished:
            now = self._now
            if now > horizon:
                break
            if audit is not None:
                audit.observe_clock(now)
                if self.auditor is not None:
                    self.auditor.check_core_invariants(core)
            # Virtual scheduler step: retire, then admit (the exact
            # order of ContinuousBatchingScheduler.step).
            if core.finished_pending:
                retired = set()
                for slot in core.finished_pending:
                    core.free_blocks += core.blocks_held(slot)
                    self._fold_terminal(core.materialize_terminal(slot))
                    core.release(slot)
                    retired.add(slot)
                core.finished_pending.clear()
                run_slots[:] = [s for s in run_slots if s not in retired]
            admitted: List[int] = []
            head = core.waiting_head()
            while (
                head is not None
                and len(run_slots) + len(admitted) < max_batch
                and arrival[head] <= now
                and core.blocks_needed(int(inp[head]) + int(gen[head]))
                <= core.free_blocks
            ):
                core.pop_waiting_head()
                core.allocate_shadow(head)
                core.objs[head].start_running()
                state[head] = SLOT_RUNNING
                admitted.append(head)
                head = core.waiting_head()
            run_slots.extend(admitted)
            if not run_slots:
                self._now = now
                head = core.waiting_head()
                if head is None:
                    break  # everything retired in this step
                if arrival[head] <= now:
                    # Nothing runs, nothing admits, and the head request
                    # has already arrived: the pool can never serve it.
                    core.sync_live_objects()
                    obj = core.objs[head]
                    reason = (
                        f"kv-exhausted: {obj.context_len} prompt tokens exceed "
                        "the free KV pool with no running request to retire"
                    )
                    raise KvCacheError(
                        f"request {obj.request_id} cannot be admitted: {reason}"
                    )
                if arrival[head] > horizon:
                    break  # idle until past the horizon; do not jump it
                # All remaining requests arrive later; jump the clock.
                self._now = max(now, float(arrival[head]))
                continue
            # Prefills run sequentially, one prompt at a time (vLLM
            # style, matching the scalar loop's clock arithmetic).
            for slot in admitted:
                phase = model.prefill(1, int(inp[slot]) + int(gen[slot]))
                now += phase.time
                activity.merge(phase.activity)
                gen[slot] += 1
                if np.isnan(first[slot]):
                    first[slot] = now
                if gen[slot] >= out[slot]:
                    state[slot] = SLOT_FINISHED
                    finish[slot] = now
                    core.finished_pending.append(slot)
            if admitted and audit is not None:
                audit.on_tokens_emitted(len(admitted))
            if core.finished_pending:
                runners = [s for s in run_slots if state[s] == SLOT_RUNNING]
            else:
                runners = list(run_slots)
            if not runners:
                self._steps += 1
                self._now = now
                continue
            # Capacity preemption: evict the newest runners until every
            # remaining one can grow a block (the scalar rule).
            while core.free_blocks < len(runners) and len(runners) > 1:
                victim = runners.pop()
                run_slots.remove(victim)
                core.free_blocks += core.blocks_held(victim)
                if audit is not None:
                    audit.on_tokens_rolled_back(int(gen[victim]))
                obj = core.objs[victim]
                obj.restart()
                gen[victim] = 0
                first[victim] = np.nan
                finish[victim] = np.nan
                core.restarts[victim] = obj.restarts
                state[victim] = SLOT_WAITING
                core.insort_waiting(victim, left=True)
                self._preemptions += 1
            now = self._decode_burst(runners, now, horizon)
        if sync_exit:
            core.sync_live_objects()
        return self._now

    def _decode_burst(self, runners: List[int], now: float, horizon: float) -> float:
        """Price consecutive decode steps for a fixed batch without any
        per-request object traffic; returns the clock after the burst.

        The burst ends just before the first virtual iteration whose
        scheduler step would diverge from a pure decode continuation: a
        runner finishing, a pending retirement, the waiting head
        becoming admissible, capacity preemption, or the horizon.  Step
        costs come from ``LlamaCostModel.decode_stepper``, whose integer
        recurrences are bit-identical to rebuilding
        ``DecodeBatchStats`` per step.
        """
        core = self._core
        bs = core.block_size
        n = len(runners)
        slots = np.asarray(runners, dtype=np.intp)
        ctx0 = core.input_tokens[slots] + core.generated[slots]
        rem = core.output_tokens[slots] - core.generated[slots]
        min_rem = int(rem.min())
        total_context = int(ctx0.sum())
        total_blocks = int(np.sum(-(-ctx0 // 128)))
        max_context = int(ctx0.max())
        # Pricing always buckets KV at the kernel's 128-token blocks;
        # the engine's pool may use a different block size, so shadow
        # growth gets its own residue histogram.  A burst that provably
        # stops after one step (a pending retirement, or a runner with
        # one token left) only ever reads the first-step KV growth, so
        # it skips the histograms -- at steady state most bursts end at
        # a retirement, making this the common case.
        single_step = bool(core.finished_pending) or min_rem <= 1
        if single_step:
            growth0 = int(np.count_nonzero(ctx0 % bs == 1))
            hist128 = hist_bs = None
        else:
            hist128 = np.bincount((ctx0 % 128).astype(np.int64), minlength=128)
            hist_bs = (
                hist128
                if bs == 128
                else np.bincount((ctx0 % bs).astype(np.int64), minlength=bs)
            )
        stepper = self.model.decode_stepper(n, self.attention)
        head = core.waiting_head()
        head_arrival = float(core.arrival[head]) if head is not None else math.inf
        head_needed = (
            core.blocks_needed(
                int(core.input_tokens[head]) + int(core.generated[head])
            )
            if head is not None
            else 0
        )
        room = n < self.max_decode_batch
        retire_pending = bool(core.finished_pending)
        activity = self._activity
        j = 0  # completed steps this burst
        recorded = 0  # steps whose tokens were recorded
        exhausted = False
        while True:
            # KV growth of the upcoming step (step j+1, 1-based): a
            # runner with start context c grows at steps where
            # c + step - 2 is a block-size multiple.
            growth = growth0 if single_step else int(hist_bs[(1 - j) % bs])
            now += stepper(total_context, total_blocks, max_context, activity)
            j += 1
            if growth > core.free_blocks:
                # Only reachable with a single runner (the headroom
                # guard below breaks first for n > 1): the step's time
                # is charged, then the append fails before any token is
                # recorded -- the scalar fail-fast path.
                exhausted = True
                break
            core.free_blocks -= growth
            recorded = j
            if single_step:
                break
            total_context += n
            max_context += 1
            total_blocks += int(hist128[(1 - j) % 128])
            if j >= min_rem:
                break  # at least one runner finished this step
            if retire_pending:
                break  # a prefill finisher awaits retirement next step
            if now > horizon:
                break
            if head_arrival <= now and room and head_needed <= core.free_blocks:
                break  # the waiting head becomes admissible next step
            if core.free_blocks < n and n > 1:
                break  # capacity preemption due next step
        core.generated[slots] += recorded
        self._steps += j
        core.vectorized_steps += j
        self._now = now
        if self._audit is not None and recorded:
            self._audit.on_tokens_emitted(n * recorded)
        if exhausted:
            core.sync_live_objects()
            raise KvCacheError("out of KV blocks during decode")
        if recorded == min_rem:
            done = slots[np.asarray(rem == min_rem)]
            core.state[done] = SLOT_FINISHED
            core.finish[done] = now
            core.finished_pending.extend(int(s) for s in done)
        return now

    def finish(self, watchdog_reason: str = "") -> ServingReport:
        """Close the run: end the root span, unbind the audit handle,
        and return the aggregate report over every fed request."""
        if self._tracer is not None:
            self._tracer.finish(self._now)
        if self._fast and self._core is not None:
            self._core.sync_live_objects()
        bump_counter(
            "vectorized_steps" if self._fast else "scalar_steps", self._steps
        )
        audit = self._audit
        self._audit = None
        self.scheduler.bind_audit(None)
        self.scheduler.on_retire = None
        requests = self._all_requests
        report = self._build_report(
            requests, self._now, self._steps, self._preemptions,
            self._activity, watchdog_reason,
        )
        if audit is not None:
            audit.observe_clock(self._now)
            audit.check_kv_drained(self.block_manager)
            if self._fast and self._core is not None and self.auditor is not None:
                core = self._core
                self.auditor.check(
                    core.free_blocks == core.num_blocks,
                    KvConservationError,
                    f"fast-path shadow pool not drained at end of run: "
                    f"{core.free_blocks}/{core.num_blocks} blocks free",
                )
            audit.check_token_conservation(self._total_generated())
            ttfts = None
            if self.retain_requests:
                ttfts = [r.ttft for r in requests if r.state is RequestState.FINISHED]
            audit.check_report(report, ttfts)
        return report

    @property
    def last_fed_arrival(self) -> float:
        """Latest ``arrival_time`` among fed requests -- the load
        generator's saturation denominator for streaming runs, where no
        materialized request list exists to take a ``max`` over."""
        return self._max_fed_arrival

    @property
    def retained_requests(self) -> List[Request]:
        """Every request fed to the current run (empty in
        ``retain_requests=False`` release mode, where terminal requests
        fold into constant-size aggregates instead)."""
        return list(self._all_requests)

    def ttft_p99(self) -> float:
        """P99 TTFT over finished requests: the exact nearest-rank
        percentile when requests are retained, else the release-mode
        histogram upper bound from :class:`ReportAggregates`."""
        if self._aggregates is not None:
            return self._aggregates.p99_ttft()
        ttfts = [
            r.ttft for r in self._all_requests
            if r.state is RequestState.FINISHED
        ]
        if not ttfts:
            return 0.0
        from repro.core.metrics import percentile

        return percentile(ttfts, 99)

    def _total_generated(self) -> int:
        """Generated-token total for the conservation check, covering
        both retained and folded (``retain_requests=False``) runs."""
        if self._aggregates is None:
            return sum(r.generated for r in self._all_requests)
        if self._fast and self._core is not None:
            live = self._core.live_generated_total()
        else:
            live = sum(
                r.generated
                for r in self.scheduler.waiting + self.scheduler.running
            )
        return self._aggregates.terminal_tokens + live

    def run(self, requests: Iterable[Request]) -> ServingReport:
        """Serve ``requests``; returns aggregate metrics.

        A :class:`Sequence` is fed up front (the canonical golden
        path); any other iterable -- a generator of arrivals -- is
        served through :meth:`run_streaming` without ever being
        materialized, which is how million-request traces run in
        bounded memory.

        Without a policy, an unservable request raises
        :class:`KvCacheError` (fail fast); with one, it is shed with a
        reason and the run continues.  An empty request list yields an
        empty report (rendered as "no finished requests") rather than
        raising.  With a watchdog armed, exceeding its step/wall budget
        stops the run and returns a partial report carrying the typed
        ``watchdog_reason``.
        """
        if not isinstance(requests, Sequence):
            return self.run_streaming(requests)
        self.begin(requests)
        watchdog_reason = ""
        try:
            self.advance()
        except WatchdogExceeded as error:
            # A wedged simulation becomes a typed partial result: release
            # every held block and report what completed so far.
            watchdog_reason = str(error)
            self.block_manager.free_all()
            if self._tracer is not None:
                self._tracer.instant("watchdog_exceeded", "engine", self._now)
            if self._metrics is not None:
                self._metrics.counter("engine.watchdog_trips").inc()
        except BaseException:
            # Fail-fast paths (e.g. KvCacheError without a policy) must
            # still close the root span and unbind the audit handle.
            if self._tracer is not None:
                self._tracer.finish(self._now)
            self._audit = None
            self.scheduler.bind_audit(None)
            raise
        return self.finish(watchdog_reason)

    def run_streaming(self, arrivals: Iterable[Request]) -> ServingReport:
        """Serve a lazily generated arrival stream in bounded memory.

        ``arrivals`` must yield requests in nondecreasing
        ``arrival_time`` order (:class:`~repro.audit.ConfigError`
        otherwise -- the single-pass clock cannot travel back to an
        earlier arrival).  At most one generated-but-unfed request is
        buffered: the engine advances to just before the next arrival,
        feeds it, and repeats, so the in-memory working set tracks the
        concurrent batch, not the trace length.  Combined with
        ``retain_requests=False`` the whole run is constant-memory.
        The report is byte-identical to feeding the same requests as a
        list up front (under the same ``retain_requests`` setting).
        """
        iterator = iter(arrivals)
        self.begin(())
        watchdog_reason = ""
        try:
            last_arrival = -math.inf
            pending = next(iterator, None)
            while pending is not None:
                if pending.arrival_time < last_arrival:
                    raise ConfigError(
                        "streaming arrivals must be sorted by nondecreasing "
                        f"arrival_time (got {pending.arrival_time!r} after "
                        f"{last_arrival!r})"
                    )
                if pending.arrival_time <= self._now or not self.has_unfinished:
                    last_arrival = pending.arrival_time
                    self.feed(pending)
                    bump_counter("arrival_buffer_peak", self._waiting_count())
                    pending = next(iterator, None)
                    continue
                before = self._now
                # Advance to just before the next arrival: a step that
                # starts earlier may overrun it, exactly as in the
                # all-at-once run, so the report bytes match.  Inside
                # this engine-owned loop nothing reads live request
                # objects between advances, so the fast path defers its
                # object sync to lifecycle events and finish().
                inner_horizon = math.nextafter(pending.arrival_time, -math.inf)
                if self._fast:
                    self._advance_fast(inner_horizon, sync_exit=False)
                else:
                    self.advance(inner_horizon)
                if self._now == before and pending.arrival_time > self._now:
                    # Idle until an internal requeue at or past the next
                    # external arrival: feed it so the clock can jump.
                    last_arrival = pending.arrival_time
                    self.feed(pending)
                    bump_counter("arrival_buffer_peak", self._waiting_count())
                    pending = next(iterator, None)
            self.advance()
        except WatchdogExceeded as error:
            watchdog_reason = str(error)
            self.block_manager.free_all()
            if self._tracer is not None:
                self._tracer.instant("watchdog_exceeded", "engine", self._now)
            if self._metrics is not None:
                self._metrics.counter("engine.watchdog_trips").inc()
        except BaseException:
            if self._tracer is not None:
                self._tracer.finish(self._now)
            self._audit = None
            self.scheduler.bind_audit(None)
            raise
        return self.finish(watchdog_reason)

    def _waiting_count(self) -> int:
        if self._fast and self._core is not None:
            return self._core.waiting_count
        return len(self.scheduler.waiting)

    # -- cluster-facing lifecycle wrappers ------------------------------
    def fail_all(self, reason: str) -> List[Request]:
        """Terminally fail every in-flight request (the cluster node
        crash path).  Requests that FINISHED awaiting retirement are
        retired, not failed.  Dispatches to whichever core owns the
        run's state, so callers never reach into the scheduler."""
        if not self._fast or self._core is None:
            return self.scheduler.fail_all(reason)
        core = self._core
        waiting = core.waiting_slots()
        run = list(core.run_slots)
        for slot in run:
            core.free_blocks += core.blocks_held(slot)
        finished_slots = [s for s in run if int(core.state[s]) == SLOT_FINISHED]
        victim_slots = waiting + [
            s for s in run if int(core.state[s]) != SLOT_FINISHED
        ]
        core.run_slots.clear()
        core.finished_pending.clear()
        core.wait_q.clear()
        core.wait_head = 0
        for slot in finished_slots:
            self._fold_terminal(core.materialize_terminal(slot))
            core.release(slot)
        victims: List[Request] = []
        for slot in victim_slots:
            request = core.sync_object(slot)
            request.fail(reason)
            core.state[slot] = SLOT_FAILED
            victims.append(request)
            self._fold_terminal(request)
            core.release(slot)
        return victims

    def cancel(self, request: Request, reason: str) -> None:
        """Shed one scheduled request (the gateway cancellation path);
        a FINISHED request awaiting retirement is retired instead."""
        if not self._fast or self._core is None:
            self.scheduler.shed(request, reason)
            return
        core = self._core
        q = core.wait_q
        for i in range(core.wait_head, len(q)):
            slot = q[i]
            if core.objs[slot] is request:
                del q[i]
                core.sync_object(slot)
                request.shed(reason)
                core.state[slot] = SLOT_SHED
                self._fold_terminal(request)
                core.release(slot)
                return
        for slot in list(core.run_slots):
            if core.objs[slot] is not request:
                continue
            core.free_blocks += core.blocks_held(slot)
            core.run_slots.remove(slot)
            if int(core.state[slot]) == SLOT_FINISHED:
                if slot in core.finished_pending:
                    core.finished_pending.remove(slot)
                self._fold_terminal(core.materialize_terminal(slot))
            else:
                core.sync_object(slot)
                request.shed(reason)
                core.state[slot] = SLOT_SHED
                self._fold_terminal(request)
            core.release(slot)
            return
        raise ValueError(f"request {request.request_id} is not scheduled")

    # ------------------------------------------------------------------
    def _submit(self, request: Request) -> None:
        try:
            self.scheduler.submit(request)
        except KvCacheError as error:
            if not self._graceful:
                raise
            request.shed(f"oversized: {error}")
            self._fold_terminal(request)

    def _advance_faults(self, now: float) -> float:
        """Apply fault events due at ``now``; returns the clock, advanced
        past any total-outage window the run had to wait out."""
        if self.injector is None:
            return now
        self._apply_fault_summary(self.injector.advance(now), now)
        # Total outage: with every device down nothing can execute.  The
        # clock can only move to the next scheduled event (a recovery, if
        # one is coming); a permanent outage fails everything in flight.
        while self.injector.alive_devices() == 0:
            next_time = self.injector.next_event_time
            if next_time is None:
                self.scheduler.fail_all("outage: all devices down")
                break
            now = max(now, next_time)
            self._apply_fault_summary(self.injector.advance(now), now)
        return now

    def _apply_fault_summary(self, summary: object, now: float) -> None:
        self.fault_stats.device_failures += summary.device_failures
        self.fault_stats.device_recoveries += summary.device_recoveries
        if self._tracer is not None:
            if summary.device_failures:
                self._tracer.instant(
                    "device_failure", "engine", now, count=summary.device_failures
                )
            if summary.device_recoveries:
                self._tracer.instant(
                    "device_recovery", "engine", now, count=summary.device_recoveries
                )
        if self._metrics is not None:
            if summary.device_failures:
                self._metrics.counter("engine.device_failures").inc(
                    summary.device_failures
                )
            if summary.device_recoveries:
                self._metrics.counter("engine.device_recoveries").inc(
                    summary.device_recoveries
                )
        if summary.device_failures:
            # A device fault kills the in-flight batch: preempt every
            # runner into checkpointed recompute.  A request that
            # FINISHED in the last step was already served; leave it for
            # retirement instead of restarting (double-serving) it.
            for victim in list(self.scheduler.running):
                if victim.state is RequestState.FINISHED:
                    continue
                self.scheduler.preempt(victim, from_checkpoint=True)
                self.fault_stats.fault_preemptions += 1
                self._fault_restarted_ids.add(victim.request_id)

    def _enforce_deadlines(self, now: float) -> None:
        # Scan when the policy sets a fleet-wide SLO *or* any fed
        # request carries its own (e.g. a tenant-tier TTFT deadline).
        if self.policy is None or (
            self.policy.deadline is None and not self._request_deadlines
        ):
            return
        for request in list(self.scheduler.waiting):
            if not request.deadline_missed(now):
                continue
            if request.retries < self.policy.retry.max_retries:
                delay = self.policy.retry.backoff(
                    request.retries, token=request.request_id
                )
                self.scheduler.requeue(request, now + delay)
                self.fault_stats.deadline_retries += 1
                if self._tracer is not None:
                    self._tracer.instant(
                        "deadline_retry", "engine", now,
                        request_id=request.request_id, retry=request.retries,
                    )
                if self._metrics is not None:
                    self._metrics.counter("engine.deadline_retries").inc()
            else:
                self.scheduler.shed(
                    request,
                    f"deadline: no first token within {request.deadline:g}s "
                    f"after {request.retries} retries",
                )

    def _slowdown(self) -> float:
        return self.injector.compute_slowdown() if self.injector is not None else 1.0

    def _maybe_checkpoint(self, request: Request) -> None:
        if self.policy is None:
            return
        if request.generated % self.policy.checkpoint_interval == 0:
            request.checkpoint = request.generated

    def _grow_kv(self, request: Request) -> bool:
        """Extend a runner's KV allocation by one token; shed on a full
        pool in graceful mode (only reachable with a single runner)."""
        try:
            self.block_manager.append_token(request.request_id)
            return True
        except KvCacheError:
            if not self._graceful:
                raise
            self.scheduler.shed(request, "kv-exhausted: pool full during decode")
            return False

    def _build_report(
        self,
        requests: Sequence[Request],
        now: float,
        steps: int,
        preemptions: int,
        activity: ActivityAccumulator,
        watchdog_reason: str = "",
    ) -> ServingReport:
        if self._aggregates is not None:
            return self._build_report_from_aggregates(
                now, steps, preemptions, activity, watchdog_reason
            )
        finished = [r for r in requests if r.state is RequestState.FINISHED]
        self.fault_stats.recovered_requests = sum(
            1 for r in finished if r.request_id in self._fault_restarted_ids
        )
        shed = [r for r in requests if r.state is RequestState.SHED]
        failed = [r for r in requests if r.state is RequestState.FAILED]
        unfinished = len(requests) - len(finished) - len(shed) - len(failed)
        mean_ttft = sum(r.ttft for r in finished) / len(finished) if finished else 0.0
        mean_tpot = sum(r.tpot for r in finished) / len(finished) if finished else 0.0
        total_tokens = sum(r.generated for r in requests)
        if self._tracer is not None:
            for request in requests:
                if request.request_id not in self._traced_request_ids:
                    continue
                self._tracer.async_end(
                    f"request-{request.request_id}",
                    "request",
                    now,
                    request.request_id,
                    state=request.state.value,
                    generated=request.generated,
                )
            self._traced_request_ids.clear()
        if self._metrics is not None:
            for request in finished:
                self._metrics.histogram("request.ttft").observe(request.ttft)
                self._metrics.histogram("request.tpot").observe(request.tpot)
        power = 0.0
        if now > 0:
            power = PowerModel(self.model.device.spec.power).power(activity.profile(now))
        return ServingReport(
            device=self.model.device.name,
            attention=self.attention.value,
            num_requests=len(requests),
            max_decode_batch=self.max_decode_batch,
            total_time=now,
            total_output_tokens=total_tokens,
            mean_ttft=mean_ttft,
            mean_tpot=mean_tpot,
            average_power=power,
            engine_steps=steps,
            preemptions=preemptions,
            finished_requests=len(finished),
            shed_requests=len(shed),
            failed_requests=len(failed),
            unfinished_requests=unfinished,
            retried_requests=sum(1 for r in requests if r.retries > 0),
            kernel_retries=self.fault_stats.kernel_retries,
            device_failures=self.fault_stats.device_failures,
            watchdog_reason=watchdog_reason,
        )

    def _build_report_from_aggregates(
        self,
        now: float,
        steps: int,
        preemptions: int,
        activity: ActivityAccumulator,
        watchdog_reason: str = "",
    ) -> ServingReport:
        """Constant-memory report for ``retain_requests=False`` runs:
        terminal requests were folded at retirement, so only the live
        (still-scheduled) remainder is walked here."""
        agg = self._aggregates
        live_tokens = 0
        live_retried = 0
        if self._fast and self._core is not None:
            core = self._core
            for slot in core.run_slots:
                live_tokens += int(core.generated[slot])
                if core.retries[slot] > 0:
                    live_retried += 1
            for slot in core.waiting_slots():
                live_tokens += int(core.generated[slot])
                if core.retries[slot] > 0:
                    live_retried += 1
        else:
            for request in self.scheduler.waiting + self.scheduler.running:
                live_tokens += request.generated
                if request.retries > 0:
                    live_retried += 1
        finished = agg.finished
        power = 0.0
        if now > 0:
            power = PowerModel(self.model.device.spec.power).power(activity.profile(now))
        return ServingReport(
            device=self.model.device.name,
            attention=self.attention.value,
            num_requests=agg.fed,
            max_decode_batch=self.max_decode_batch,
            total_time=now,
            total_output_tokens=agg.terminal_tokens + live_tokens,
            mean_ttft=agg.sum_ttft / finished if finished else 0.0,
            mean_tpot=agg.sum_tpot / finished if finished else 0.0,
            average_power=power,
            engine_steps=steps,
            preemptions=preemptions,
            finished_requests=finished,
            shed_requests=agg.shed,
            failed_requests=agg.failed,
            unfinished_requests=agg.fed - finished - agg.shed - agg.failed,
            retried_requests=agg.retried + live_retried,
            kernel_retries=self.fault_stats.kernel_retries,
            device_failures=self.fault_stats.device_failures,
            watchdog_reason=watchdog_reason,
        )

    # ------------------------------------------------------------------
    def _ensure_headroom(self, running: List[Request]) -> int:
        """Preempt newest requests until every runner can grow a block."""
        preempted = 0
        while self.block_manager.free_blocks < len(running) and len(running) > 1:
            victim = running.pop()
            self.scheduler.preempt(victim)
            preempted += 1
        return preempted
