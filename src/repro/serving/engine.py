"""Step-driven LLM serving engine (the vLLM analog).

The engine advances a virtual clock: each iteration admits requests
through the continuous-batching scheduler, charges a prefill phase for
newly admitted prompts, then one decode step for the whole running
batch, using the bound :class:`~repro.models.llama.LlamaCostModel` and
the selected decode-attention implementation.  TTFT and TPOT fall out
of the per-request timestamps, which is how Figure 17(d, e) is
regenerated.

With a :class:`ResiliencePolicy` (and optionally a
:class:`~repro.faults.injector.FaultInjector`) bound, the engine
degrades gracefully instead of crashing: requests that can never fit
the KV pool are shed with a reason, TTFT deadlines trigger client-style
retries with exponential backoff, device faults preempt the running
batch into checkpointed recompute, and transient kernel failures cost a
wasted step rather than the run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.audit import Watchdog, WatchdogExceeded, get_auditor
from repro.hw.power import ActivityAccumulator, PowerModel
from repro.models.llama import DecodeAttention, DecodeBatchStats, LlamaCostModel
from repro.serving.kv_cache import BlockManager, KvCacheError
from repro.serving.request import Request, RequestState, RetryPolicy
from repro.serving.scheduler import ContinuousBatchingScheduler

#: Default KV block size in tokens (matches the paged-attention kernel).
DEFAULT_BLOCK_SIZE = 128


@dataclass(frozen=True)
class ResiliencePolicy:
    """Graceful-degradation knobs for one serving run.

    ``deadline`` is a TTFT SLO in seconds: a request still waiting past
    it is retried (client-style, with exponential backoff per
    ``retry``) and finally shed.  ``checkpoint_interval`` bounds the
    recompute after a device fault; ``admission_watermark`` keeps a
    fraction of the KV pool free for decode growth.
    """

    shed_on_exhaustion: bool = True
    deadline: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    checkpoint_interval: int = 32
    admission_watermark: float = 1.0

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")


@dataclass
class FaultStats:
    """Counters of degradation events during one run."""

    device_failures: int = 0
    device_recoveries: int = 0
    fault_preemptions: int = 0
    kernel_retries: int = 0
    deadline_retries: int = 0
    recovered_requests: int = 0


@dataclass(frozen=True)
class ServingReport:
    """Aggregate metrics of one serving run.

    Latency means are computed over *finished* requests only;
    ``num_requests`` counts everything submitted, partitioned into
    finished / shed / failed / unfinished.
    """

    device: str
    attention: str
    num_requests: int
    max_decode_batch: int
    total_time: float
    total_output_tokens: int
    mean_ttft: float
    mean_tpot: float
    average_power: float
    engine_steps: int
    preemptions: int
    finished_requests: int = 0
    shed_requests: int = 0
    failed_requests: int = 0
    unfinished_requests: int = 0
    retried_requests: int = 0
    kernel_retries: int = 0
    device_failures: int = 0
    #: Non-empty when a :class:`~repro.audit.Watchdog` stopped the run
    #: early -- the report is then a typed *partial* result.
    watchdog_reason: str = ""

    @property
    def watchdog_tripped(self) -> bool:
        return bool(self.watchdog_reason)

    @property
    def throughput_tokens_per_s(self) -> float:
        return self.total_output_tokens / self.total_time if self.total_time > 0 else 0.0

    @property
    def requests_per_s(self) -> float:
        return self.num_requests / self.total_time if self.total_time > 0 else 0.0

    @property
    def energy_per_token(self) -> float:
        if self.total_output_tokens == 0:
            return 0.0
        return self.average_power * self.total_time / self.total_output_tokens

    @property
    def completion_rate(self) -> float:
        """Fraction of submitted requests served to completion."""
        return self.finished_requests / self.num_requests if self.num_requests else 0.0

    # -- Report protocol ----------------------------------------------
    def to_dict(self) -> dict:
        """All fields plus the derived rates, as one plain dict."""
        return {
            "device": self.device,
            "attention": self.attention,
            "num_requests": self.num_requests,
            "max_decode_batch": self.max_decode_batch,
            "total_time": round(self.total_time, 9),
            "total_output_tokens": self.total_output_tokens,
            "throughput_tokens_per_s": round(self.throughput_tokens_per_s, 6),
            "requests_per_s": round(self.requests_per_s, 6),
            "mean_ttft": round(self.mean_ttft, 9),
            "mean_tpot": round(self.mean_tpot, 9),
            "average_power": round(self.average_power, 3),
            "energy_per_token": round(self.energy_per_token, 9),
            "engine_steps": self.engine_steps,
            "preemptions": self.preemptions,
            "finished_requests": self.finished_requests,
            "shed_requests": self.shed_requests,
            "failed_requests": self.failed_requests,
            "unfinished_requests": self.unfinished_requests,
            "retried_requests": self.retried_requests,
            "kernel_retries": self.kernel_retries,
            "device_failures": self.device_failures,
            "completion_rate": round(self.completion_rate, 6),
            "watchdog_reason": self.watchdog_reason,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServingReport":
        """Rebuild a report from its :meth:`to_dict` payload (derived
        rates are recomputed, not read back) -- the journal-resume path
        for sweep points."""
        return cls(
            device=data["device"],
            attention=data["attention"],
            num_requests=int(data["num_requests"]),
            max_decode_batch=int(data["max_decode_batch"]),
            total_time=float(data["total_time"]),
            total_output_tokens=int(data["total_output_tokens"]),
            mean_ttft=float(data["mean_ttft"]),
            mean_tpot=float(data["mean_tpot"]),
            average_power=float(data["average_power"]),
            engine_steps=int(data["engine_steps"]),
            preemptions=int(data["preemptions"]),
            finished_requests=int(data.get("finished_requests", 0)),
            shed_requests=int(data.get("shed_requests", 0)),
            failed_requests=int(data.get("failed_requests", 0)),
            unfinished_requests=int(data.get("unfinished_requests", 0)),
            retried_requests=int(data.get("retried_requests", 0)),
            kernel_retries=int(data.get("kernel_retries", 0)),
            device_failures=int(data.get("device_failures", 0)),
            watchdog_reason=str(data.get("watchdog_reason", "")),
        )

    def to_json(self) -> str:
        """The report as a JSON document."""
        import json

        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_csv(self) -> str:
        """The report as one CSV row."""
        from repro.api.report import rows_to_csv

        return rows_to_csv([self.to_dict()])

    def render(self) -> str:
        """Fixed-format text report (byte-identical per seed)."""
        lines = [
            f"Serving report: {self.device} "
            f"({self.attention}, max decode batch {self.max_decode_batch})",
            f"  requests   : {self.num_requests} submitted | "
            f"{self.finished_requests} finished | {self.shed_requests} shed | "
            f"{self.failed_requests} failed | {self.unfinished_requests} unfinished",
            f"  throughput : {self.throughput_tokens_per_s:.0f} tokens/s over "
            f"{self.total_time:.4f} s ({self.total_output_tokens} tokens)",
        ]
        if self.finished_requests == 0:
            lines.append("  latency    : no finished requests")
        else:
            lines.append(f"  mean TTFT  : {self.mean_ttft:.3f} s")
            lines.append(f"  mean TPOT  : {self.mean_tpot * 1e3:.1f} ms")
        lines += [
            f"  power      : {self.average_power:.0f} W",
            f"  energy     : {self.energy_per_token * 1e3:.2f} mJ/token",
            f"  engine     : {self.engine_steps} steps | {self.preemptions} "
            f"preemptions | {self.kernel_retries} kernel retries",
        ]
        if self.watchdog_reason:
            lines.append(f"  watchdog   : PARTIAL RESULT ({self.watchdog_reason})")
        return "\n".join(lines)


class LlmServingEngine:
    """Serves batches of requests over a Llama cost model."""

    def __init__(
        self,
        model: LlamaCostModel,
        attention: DecodeAttention = DecodeAttention.PAGED_OPT,
        max_decode_batch: int = 64,
        block_size: int = DEFAULT_BLOCK_SIZE,
        num_kv_blocks: Optional[int] = None,
        policy: Optional[ResiliencePolicy] = None,
        injector: Optional[object] = None,
        ctx: Optional[object] = None,
        auditor: Optional[object] = None,
        watchdog: Optional[object] = None,
    ) -> None:
        """``injector`` is a :class:`~repro.faults.injector.FaultInjector`
        (duck-typed so the serving layer stays import-independent of
        :mod:`repro.faults`).  ``ctx`` is a
        :class:`~repro.api.RunContext`; with one bound, the run records
        hierarchical spans on the virtual clock and ``engine.*`` /
        ``kv.*`` / ``scheduler.*`` / ``power.*`` metrics (see
        :meth:`bind_context`).  ``auditor`` overrides the process
        auditor (``REPRO_AUDIT``); ``watchdog`` is a
        :class:`~repro.audit.Watchdog` bounding the run by steps/wall
        time -- tripping it yields a typed partial report instead of a
        wedged simulation."""
        self.model = model
        self.attention = attention
        if num_kv_blocks is None:
            capacity_tokens = model.max_kv_tokens()
            num_kv_blocks = max(1, capacity_tokens // block_size)
        self.block_manager = BlockManager(num_kv_blocks, block_size)
        self.policy = policy
        self.injector = injector
        self.auditor = auditor if auditor is not None else get_auditor()
        self.watchdog = watchdog if watchdog is not None else Watchdog.from_env()
        self.block_manager.bind_auditor(self.auditor)
        self.scheduler = ContinuousBatchingScheduler(
            self.block_manager,
            max_decode_batch,
            admission_watermark=policy.admission_watermark if policy else 1.0,
        )
        self.max_decode_batch = max_decode_batch
        self.fault_stats = FaultStats()
        self._fault_restarted_ids: set = set()
        self._power_model = PowerModel(self.model.device.spec.power)
        self.ctx = None
        self._tracer = None
        self._metrics = None
        self._traced_request_ids: set = set()
        # Streaming-run state (see begin/feed/advance/finish).
        self._audit = None
        self._now = 0.0
        self._steps = 0
        self._preemptions = 0
        self._activity: Optional[ActivityAccumulator] = None
        self._batch_stats: Optional[DecodeBatchStats] = None
        self._batch_version = -1
        self._all_requests: List[Request] = []
        if ctx is not None:
            self.bind_context(ctx)

    def bind_context(self, ctx) -> None:
        """Bind a :class:`~repro.api.RunContext` (or None to unbind),
        propagating its tracer/metrics to the scheduler, KV block
        manager, and tensor-parallel collective hooks."""
        self.ctx = ctx
        self._tracer = ctx.tracer if ctx is not None else None
        self._metrics = ctx.metrics if ctx is not None else None
        self.scheduler.bind_observability(self._tracer, self._metrics)
        self.block_manager.bind_metrics(self._metrics)
        self.model.tp.bind_observability(
            self._metrics, queue_events=self._tracer is not None
        )

    # -- observability helpers -----------------------------------------
    def _trace_request_begin(self, request: Request, now: float) -> None:
        """Open the per-request async span on first admission."""
        if self._tracer is None or request.request_id in self._traced_request_ids:
            return
        self._traced_request_ids.add(request.request_id)
        self._tracer.async_begin(
            f"request-{request.request_id}",
            "request",
            min(request.arrival_time, now),
            request.request_id,
            prompt_tokens=request.input_tokens,
        )

    def _emit_comm_spans(self, end: float) -> None:
        """Lay the collectives queued during the last model phase as
        back-to-back spans ending at ``end``.

        The cost model reports AllReduce durations, not timestamps, so
        the spans are reconstructed at the tail of the phase window --
        which is where they sit in a real execution: the activation
        AllReduce follows the sharded matmuls it synchronises."""
        tracer = self._tracer
        if tracer is None:
            return
        events = self.model.tp.drain_comm_events()
        if not events:
            return
        library = self.model.tp.library
        prefix = (
            type(library).__name__.replace("Library", "").lower()
            if library is not None
            else "comm"
        )
        start = end - sum(seconds for _, seconds, _ in events)
        for op, seconds, size_bytes in events:
            tracer.record(
                f"{prefix}.{op}",
                "collective",
                start,
                start + seconds,
                size_bytes=size_bytes,
            )
            start += seconds

    def _finish_step(
        self,
        step_span: Optional[object],
        step_start: float,
        now: float,
        step_activity: Optional[ActivityAccumulator],
        batch_size: int,
    ) -> None:
        """Close one iteration's span and record its samples: a power
        span on the ``power`` track, counter tracks for watts / KV
        occupancy / batch size, and the per-step metrics."""
        tracer = self._tracer
        metrics = self._metrics
        if tracer is None and metrics is None:
            return
        duration = now - step_start
        watts = 0.0
        if step_activity is not None and duration > 0:
            watts = self._power_model.power(step_activity.profile(duration))
        stats = self.block_manager.stats()
        if tracer is not None:
            tracer.record(
                "power.sample", "power", step_start, now, watts=round(watts, 3)
            )
            tracer.counter("power.watts", now, round(watts, 3))
            tracer.counter("kv.allocated_blocks", now, stats.allocated_blocks)
            tracer.counter("batch.running", now, batch_size)
            if step_span is not None:
                tracer.end(step_span, now, batch=batch_size)
        if metrics is not None:
            metrics.counter("engine.steps").inc()
            metrics.histogram("engine.batch_size").observe(batch_size)
            metrics.histogram("power.watts").observe(watts)
            metrics.gauge("kv.allocated_blocks").set(stats.allocated_blocks)
            if step_activity is not None:
                step_activity.record_to(metrics)

    @property
    def _graceful(self) -> bool:
        return self.policy is not None and self.policy.shed_on_exhaustion

    # -- streaming run API ---------------------------------------------
    # ``run()`` packages the canonical one-shot flow; the four-phase
    # API below (begin / feed / advance / finish) lets an external
    # event loop -- a cluster Node on the shared fleet clock -- embed
    # the engine, feeding requests as a gateway routes them and
    # advancing the simulation in bounded horizons.

    def begin(self, requests: Sequence[Request] = ()) -> None:
        """Open a run: arm the audit ledger and watchdog, start the
        root span, and submit any up-front ``requests``."""
        self._audit = self.auditor.begin_run("serving.run") if self.auditor else None
        self.scheduler.bind_audit(self._audit)
        if self._audit is not None:
            self._audit.set_token_baseline(sum(r.generated for r in requests))
        if self.watchdog is not None:
            self.watchdog.start()
        self._now = 0.0
        self._steps = 0
        self._preemptions = 0
        self._activity = ActivityAccumulator()
        # Incremental decode-batch statistics: valid while the running
        # batch's membership is unchanged (scheduler.mutation_count) and
        # every runner grew by exactly one token since they were built.
        self._batch_stats: Optional[DecodeBatchStats] = None
        self._batch_version = -1
        self._all_requests: List[Request] = []
        if self._tracer is not None:
            self._tracer.begin(
                "serving.run", "engine", self._now,
                device=self.model.device.name,
                attention=self.attention.value,
                requests=len(requests),
            )
        for request in requests:
            self.feed(request)

    def feed(self, request: Request) -> None:
        """Submit one request to an open run (streaming admission)."""
        if self.policy and self.policy.deadline is not None and request.deadline is None:
            request.deadline = self.policy.deadline
        if self._audit is not None and request.generated:
            # Late-fed requests extend the conservation baseline.
            self._audit.set_token_baseline(
                self._audit._token_baseline + request.generated
            )
        self._all_requests.append(request)
        self._submit(request)

    @property
    def now(self) -> float:
        """Current virtual time of the open run."""
        return self._now

    @property
    def requests(self) -> List[Request]:
        """Every request fed to the current run, in feed order."""
        return list(self._all_requests)

    @property
    def has_unfinished(self) -> bool:
        return self.scheduler.has_unfinished

    def advance(self, horizon: float = math.inf) -> float:
        """Drive the step loop while work remains and steps start at or
        before ``horizon``; returns the clock.

        A step that *starts* within the horizon executes to completion
        (the batch-synchronous clock cannot split an iteration), so the
        returned time may overrun ``horizon`` -- callers observe
        completions at the next advance, exactly like polling a real
        engine between scheduler ticks.  Raises
        :class:`~repro.audit.WatchdogExceeded` when the armed watchdog
        budget is exhausted (``run()`` converts that into a typed
        partial report).
        """
        audit = self._audit
        watchdog = self.watchdog
        tracer = self._tracer
        observing = tracer is not None or self._metrics is not None
        while self.scheduler.has_unfinished:
            if self._now > horizon:
                break
            if watchdog is not None:
                watchdog.check(self._steps)
            now = self._advance_faults(self._now)
            if audit is not None:
                audit.observe_clock(now)
            self._enforce_deadlines(now)
            schedule = self.scheduler.step(now)
            if not schedule.has_work:
                self._now = now
                if not self.scheduler.waiting:
                    break  # everything retired in this step
                head = self.scheduler.waiting[0]  # arrival-sorted queue
                if head.arrival_time <= now:
                    # Nothing runs, nothing admits, and the head request
                    # has already arrived: the pool can never serve it.
                    reason = (
                        f"kv-exhausted: {head.context_len} prompt tokens exceed "
                        "the free KV pool with no running request to retire"
                    )
                    if self._graceful:
                        self.scheduler.shed(head, reason)
                        continue
                    raise KvCacheError(
                        f"request {head.request_id} cannot be admitted: {reason}"
                    )
                if head.arrival_time > horizon:
                    break  # idle until past the horizon; do not jump it
                # All remaining requests arrive later; jump the clock.
                self._now = max(now, head.arrival_time)
                continue
            slowdown = self._slowdown()
            step_start = now
            step_span = None
            step_activity = None
            if observing:
                step_activity = ActivityAccumulator()
            if tracer is not None:
                step_span = tracer.begin(
                    "engine.step", "engine", now,
                    step=self._steps, admitted=len(schedule.new_requests),
                )
            for request in schedule.new_requests:
                # vLLM prefills prompts individually (no padding waste).
                # A fault-restarted request recomputes its checkpointed
                # tokens too, hence context_len rather than input_tokens.
                prefill_span = None
                if tracer is not None:
                    self._trace_request_begin(request, now)
                    prefill_span = tracer.begin(
                        "prefill", "engine", now,
                        request_id=request.request_id,
                        prompt_tokens=request.context_len,
                    )
                phase = self.model.prefill(1, request.context_len)
                now += phase.time * slowdown
                self._activity.merge(phase.activity)
                if step_activity is not None:
                    step_activity.merge(phase.activity)
                    self._emit_comm_spans(now)
                if prefill_span is not None:
                    tracer.end(prefill_span, now)
                request.record_token(now)
                if audit is not None:
                    audit.on_tokens_emitted()
                self._maybe_checkpoint(request)
            running = [r for r in schedule.running if r.state is RequestState.RUNNING]
            if not running:
                self._steps += 1
                self._now = now
                if observing:
                    self._finish_step(step_span, step_start, now, step_activity, 0)
                continue
            self._preemptions += self._ensure_headroom(running)
            running = [r for r in running if r.state is RequestState.RUNNING]
            if not running:
                self._steps += 1
                self._now = now
                if observing:
                    self._finish_step(step_span, step_start, now, step_activity, 0)
                continue
            decode_span = None
            if tracer is not None:
                decode_span = tracer.begin(
                    "decode.step", "engine", now, batch=len(running)
                )
            version = self.scheduler.mutation_count
            if (
                self._batch_stats is None
                or self._batch_version != version
                or self._batch_stats.batch != len(running)
            ):
                self._batch_stats = DecodeBatchStats.from_context_lens(
                    [r.context_len for r in running]
                )
                self._batch_version = version
            phase = self.model.decode_step_stats(self._batch_stats, self.attention)
            now += phase.time * slowdown
            self._activity.merge(phase.activity)
            if step_activity is not None:
                step_activity.merge(phase.activity)
                self._emit_comm_spans(now)
            if decode_span is not None:
                tracer.end(decode_span, now)
            self._steps += 1
            self._now = now
            if self.injector is not None and self.injector.kernel_fault():
                # Transient kernel failure: the step's output is lost
                # and recomputed next iteration; the time still passed.
                # No runner grew, so batch_stats stays valid as-is.
                self.fault_stats.kernel_retries += 1
                if tracer is not None:
                    tracer.instant("kernel_fault", "engine", now)
                if self._metrics is not None:
                    self._metrics.counter("engine.kernel_retries").inc()
                if observing:
                    self._finish_step(step_span, step_start, now, step_activity, len(running))
                continue
            grew_all = True
            for request in running:
                if not self._grow_kv(request):
                    grew_all = False
                    continue
                request.record_token(now)
                if audit is not None:
                    audit.on_tokens_emitted()
                self._maybe_checkpoint(request)
            if grew_all and self.scheduler.mutation_count == self._batch_version:
                # Every runner gained exactly one token: advance the
                # batch statistics in O(1) instead of rebuilding.
                self._batch_stats = self._batch_stats.advanced()
            else:
                self._batch_stats = None
            if observing:
                self._finish_step(step_span, step_start, now, step_activity, len(running))
        return self._now

    def finish(self, watchdog_reason: str = "") -> ServingReport:
        """Close the run: end the root span, unbind the audit handle,
        and return the aggregate report over every fed request."""
        if self._tracer is not None:
            self._tracer.finish(self._now)
        audit = self._audit
        self._audit = None
        self.scheduler.bind_audit(None)
        requests = self._all_requests
        report = self._build_report(
            requests, self._now, self._steps, self._preemptions,
            self._activity, watchdog_reason,
        )
        if audit is not None:
            audit.observe_clock(self._now)
            audit.check_kv_drained(self.block_manager)
            audit.check_token_conservation(sum(r.generated for r in requests))
            audit.check_report(
                report,
                [r.ttft for r in requests if r.state is RequestState.FINISHED],
            )
        return report

    def run(self, requests: Sequence[Request]) -> ServingReport:
        """Serve ``requests``; returns aggregate metrics.

        Without a policy, an unservable request raises
        :class:`KvCacheError` (fail fast); with one, it is shed with a
        reason and the run continues.  An empty request list yields an
        empty report (rendered as "no finished requests") rather than
        raising.  With a watchdog armed, exceeding its step/wall budget
        stops the run and returns a partial report carrying the typed
        ``watchdog_reason``.
        """
        self.begin(requests)
        watchdog_reason = ""
        try:
            self.advance()
        except WatchdogExceeded as error:
            # A wedged simulation becomes a typed partial result: release
            # every held block and report what completed so far.
            watchdog_reason = str(error)
            self.block_manager.free_all()
            if self._tracer is not None:
                self._tracer.instant("watchdog_exceeded", "engine", self._now)
            if self._metrics is not None:
                self._metrics.counter("engine.watchdog_trips").inc()
        except BaseException:
            # Fail-fast paths (e.g. KvCacheError without a policy) must
            # still close the root span and unbind the audit handle.
            if self._tracer is not None:
                self._tracer.finish(self._now)
            self._audit = None
            self.scheduler.bind_audit(None)
            raise
        return self.finish(watchdog_reason)

    # ------------------------------------------------------------------
    def _submit(self, request: Request) -> None:
        try:
            self.scheduler.submit(request)
        except KvCacheError as error:
            if not self._graceful:
                raise
            request.shed(f"oversized: {error}")

    def _advance_faults(self, now: float) -> float:
        """Apply fault events due at ``now``; returns the clock, advanced
        past any total-outage window the run had to wait out."""
        if self.injector is None:
            return now
        self._apply_fault_summary(self.injector.advance(now), now)
        # Total outage: with every device down nothing can execute.  The
        # clock can only move to the next scheduled event (a recovery, if
        # one is coming); a permanent outage fails everything in flight.
        while self.injector.alive_devices() == 0:
            next_time = self.injector.next_event_time
            if next_time is None:
                self.scheduler.fail_all("outage: all devices down")
                break
            now = max(now, next_time)
            self._apply_fault_summary(self.injector.advance(now), now)
        return now

    def _apply_fault_summary(self, summary: object, now: float) -> None:
        self.fault_stats.device_failures += summary.device_failures
        self.fault_stats.device_recoveries += summary.device_recoveries
        if self._tracer is not None:
            if summary.device_failures:
                self._tracer.instant(
                    "device_failure", "engine", now, count=summary.device_failures
                )
            if summary.device_recoveries:
                self._tracer.instant(
                    "device_recovery", "engine", now, count=summary.device_recoveries
                )
        if self._metrics is not None:
            if summary.device_failures:
                self._metrics.counter("engine.device_failures").inc(
                    summary.device_failures
                )
            if summary.device_recoveries:
                self._metrics.counter("engine.device_recoveries").inc(
                    summary.device_recoveries
                )
        if summary.device_failures:
            # A device fault kills the in-flight batch: preempt every
            # runner into checkpointed recompute.  A request that
            # FINISHED in the last step was already served; leave it for
            # retirement instead of restarting (double-serving) it.
            for victim in list(self.scheduler.running):
                if victim.state is RequestState.FINISHED:
                    continue
                self.scheduler.preempt(victim, from_checkpoint=True)
                self.fault_stats.fault_preemptions += 1
                self._fault_restarted_ids.add(victim.request_id)

    def _enforce_deadlines(self, now: float) -> None:
        if self.policy is None or self.policy.deadline is None:
            return
        for request in list(self.scheduler.waiting):
            if not request.deadline_missed(now):
                continue
            if request.retries < self.policy.retry.max_retries:
                delay = self.policy.retry.backoff(
                    request.retries, token=request.request_id
                )
                self.scheduler.requeue(request, now + delay)
                self.fault_stats.deadline_retries += 1
                if self._tracer is not None:
                    self._tracer.instant(
                        "deadline_retry", "engine", now,
                        request_id=request.request_id, retry=request.retries,
                    )
                if self._metrics is not None:
                    self._metrics.counter("engine.deadline_retries").inc()
            else:
                self.scheduler.shed(
                    request,
                    f"deadline: no first token within {request.deadline:g}s "
                    f"after {request.retries} retries",
                )

    def _slowdown(self) -> float:
        return self.injector.compute_slowdown() if self.injector is not None else 1.0

    def _maybe_checkpoint(self, request: Request) -> None:
        if self.policy is None:
            return
        if request.generated % self.policy.checkpoint_interval == 0:
            request.checkpoint = request.generated

    def _grow_kv(self, request: Request) -> bool:
        """Extend a runner's KV allocation by one token; shed on a full
        pool in graceful mode (only reachable with a single runner)."""
        try:
            self.block_manager.append_token(request.request_id)
            return True
        except KvCacheError:
            if not self._graceful:
                raise
            self.scheduler.shed(request, "kv-exhausted: pool full during decode")
            return False

    def _build_report(
        self,
        requests: Sequence[Request],
        now: float,
        steps: int,
        preemptions: int,
        activity: ActivityAccumulator,
        watchdog_reason: str = "",
    ) -> ServingReport:
        finished = [r for r in requests if r.state is RequestState.FINISHED]
        self.fault_stats.recovered_requests = sum(
            1 for r in finished if r.request_id in self._fault_restarted_ids
        )
        shed = [r for r in requests if r.state is RequestState.SHED]
        failed = [r for r in requests if r.state is RequestState.FAILED]
        unfinished = len(requests) - len(finished) - len(shed) - len(failed)
        mean_ttft = sum(r.ttft for r in finished) / len(finished) if finished else 0.0
        mean_tpot = sum(r.tpot for r in finished) / len(finished) if finished else 0.0
        total_tokens = sum(r.generated for r in requests)
        if self._tracer is not None:
            for request in requests:
                if request.request_id not in self._traced_request_ids:
                    continue
                self._tracer.async_end(
                    f"request-{request.request_id}",
                    "request",
                    now,
                    request.request_id,
                    state=request.state.value,
                    generated=request.generated,
                )
            self._traced_request_ids.clear()
        if self._metrics is not None:
            for request in finished:
                self._metrics.histogram("request.ttft").observe(request.ttft)
                self._metrics.histogram("request.tpot").observe(request.tpot)
        power = 0.0
        if now > 0:
            power = PowerModel(self.model.device.spec.power).power(activity.profile(now))
        return ServingReport(
            device=self.model.device.name,
            attention=self.attention.value,
            num_requests=len(requests),
            max_decode_batch=self.max_decode_batch,
            total_time=now,
            total_output_tokens=total_tokens,
            mean_ttft=mean_ttft,
            mean_tpot=mean_tpot,
            average_power=power,
            engine_steps=steps,
            preemptions=preemptions,
            finished_requests=len(finished),
            shed_requests=len(shed),
            failed_requests=len(failed),
            unfinished_requests=unfinished,
            retried_requests=sum(1 for r in requests if r.retries > 0),
            kernel_retries=self.fault_stats.kernel_retries,
            device_failures=self.fault_stats.device_failures,
            watchdog_reason=watchdog_reason,
        )

    # ------------------------------------------------------------------
    def _ensure_headroom(self, running: List[Request]) -> int:
        """Preempt newest requests until every runner can grow a block."""
        preempted = 0
        while self.block_manager.free_blocks < len(running) and len(running) > 1:
            victim = running.pop()
            self.scheduler.preempt(victim)
            preempted += 1
        return preempted
