"""Struct-of-arrays state store for the vectorized serving fast path.

The scalar engine keeps every request as a live Python object and walks
the batch attribute-by-attribute each virtual step.  At million-request
scale that object traffic dominates the wall clock, so the fast path
(:meth:`~repro.serving.engine.LlmServingEngine` with
``engine_mode="vectorized"``) keeps request state in parallel numpy
arrays keyed by a stable *slot* index instead:

* a slot is acquired when a request is fed and recycled once the
  request reaches a terminal state and has been materialized back onto
  its :class:`~repro.serving.request.Request` object, so live array
  size tracks the working set (waiting + running), not the run length;
* one decode burst prices many virtual steps against integer context
  aggregates (see ``LlamaCostModel.decode_stepper``) without touching
  any per-request object;
* the thin ``Request`` objects remain the API boundary: they are
  materialized from the arrays at every lifecycle event (admission,
  preemption, retirement) and at ``advance()`` exit, so reports,
  journaling, and audit transitions keep their exact scalar semantics.

The module also owns the process-wide fast-path counters surfaced by
``repro top`` and :class:`ReportAggregates`, the constant-memory
folding sink used when the engine runs with ``retain_requests=False``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.serving.request import Request, RequestState

__all__ = [
    "CORE_COUNTERS",
    "EngineCore",
    "ReportAggregates",
    "bump_counter",
    "counters_snapshot",
    "render_counters",
    "reset_counters",
]

# -- slot states (int8 codes mirroring RequestState) ----------------------
SLOT_FREE = -1
SLOT_WAITING = 0
SLOT_RUNNING = 1
SLOT_FINISHED = 2
SLOT_SHED = 3
SLOT_FAILED = 4

_STATE_OF_CODE = {
    SLOT_WAITING: RequestState.WAITING,
    SLOT_RUNNING: RequestState.RUNNING,
    SLOT_FINISHED: RequestState.FINISHED,
    SLOT_SHED: RequestState.SHED,
    SLOT_FAILED: RequestState.FAILED,
}

#: Process-wide fast-path health counters (the ``repro top`` section).
CORE_COUNTERS: Dict[str, int] = {
    "vectorized_steps": 0,
    "scalar_steps": 0,
    "vectorized_runs": 0,
    "scalar_runs": 0,
    "slot_high_water": 0,
    "arrival_buffer_peak": 0,
}


def bump_counter(name: str, amount: int = 1) -> None:
    """Increment one process-wide counter (``slot_high_water`` and
    ``arrival_buffer_peak`` are maxima, not sums)."""
    if name in ("slot_high_water", "arrival_buffer_peak"):
        if amount > CORE_COUNTERS[name]:
            CORE_COUNTERS[name] = amount
    else:
        CORE_COUNTERS[name] += amount


def counters_snapshot() -> Dict[str, int]:
    """A copy of the process-wide fast-path counters."""
    return dict(CORE_COUNTERS)


def reset_counters() -> None:
    """Zero every process-wide fast-path counter (test isolation)."""
    for key in CORE_COUNTERS:
        CORE_COUNTERS[key] = 0


def render_counters() -> str:
    """Fixed-format counter block for ``repro top``."""
    c = CORE_COUNTERS
    return "\n".join([
        f"  steps      : {c['vectorized_steps']} vectorized | "
        f"{c['scalar_steps']} scalar",
        f"  runs       : {c['vectorized_runs']} vectorized | "
        f"{c['scalar_runs']} scalar",
        f"  slots      : {c['slot_high_water']} high-water mark",
        f"  arrivals   : {c['arrival_buffer_peak']} peak buffered",
    ])


class EngineCore:
    """Slot-indexed struct-of-arrays request store for one run.

    Invariants (checked by ``Auditor.check_core_invariants``):

    * a slot id is owned by at most one live request; recycled slots
      re-enter circulation only after their previous occupant reached a
      terminal state and was materialized;
    * shadow KV accounting conserves blocks: free plus the blocks held
      by running slots always equals the pool size;
    * ``wait_q[wait_head:]`` is sorted by arrival time.
    """

    __slots__ = (
        "block_size", "num_blocks", "free_blocks",
        "capacity", "input_tokens", "output_tokens", "generated",
        "arrival", "first_token", "finish", "restarts", "retries",
        "state", "objs", "free_slots", "wait_q", "wait_head",
        "run_slots", "finished_pending", "slots_acquired",
        "slot_high_water", "vectorized_steps",
    )

    def __init__(self, num_blocks: int, block_size: int, capacity: int = 64) -> None:
        self.block_size = block_size
        self.num_blocks = num_blocks
        self.free_blocks = num_blocks
        self.capacity = max(8, capacity)
        n = self.capacity
        self.input_tokens = np.zeros(n, dtype=np.int64)
        self.output_tokens = np.zeros(n, dtype=np.int64)
        self.generated = np.zeros(n, dtype=np.int64)
        self.arrival = np.zeros(n, dtype=np.float64)
        self.first_token = np.full(n, np.nan)
        self.finish = np.full(n, np.nan)
        self.restarts = np.zeros(n, dtype=np.int64)
        self.retries = np.zeros(n, dtype=np.int64)
        self.state = np.full(n, SLOT_FREE, dtype=np.int8)
        self.objs: List[Optional[Request]] = [None] * n
        self.free_slots: List[int] = list(range(n - 1, -1, -1))
        self.wait_q: List[int] = []
        self.wait_head = 0
        self.run_slots: List[int] = []
        #: Slots that FINISHED during the last burst, awaiting retirement
        #: at the next virtual scheduler step (mirrors the scalar order).
        self.finished_pending: List[int] = []
        self.slots_acquired = 0
        self.slot_high_water = 0
        self.vectorized_steps = 0

    # -- slot lifecycle ------------------------------------------------
    def _grow(self) -> None:
        old = self.capacity
        new = old * 2
        for name in ("input_tokens", "output_tokens", "generated",
                     "restarts", "retries"):
            arr = np.zeros(new, dtype=np.int64)
            arr[:old] = getattr(self, name)
            setattr(self, name, arr)
        arr = np.zeros(new)
        arr[:old] = self.arrival
        self.arrival = arr
        for name in ("first_token", "finish"):
            arr = np.full(new, np.nan)
            arr[:old] = getattr(self, name)
            setattr(self, name, arr)
        state = np.full(new, SLOT_FREE, dtype=np.int8)
        state[:old] = self.state
        self.state = state
        self.objs.extend([None] * (new - old))
        self.free_slots.extend(range(new - 1, old - 1, -1))
        self.capacity = new

    def acquire(self, request: Request) -> int:
        """Bind a fed request to a slot and enqueue it as WAITING."""
        if not self.free_slots:
            self._grow()
        slot = self.free_slots.pop()
        self.input_tokens[slot] = request.input_tokens
        self.output_tokens[slot] = request.output_tokens
        self.generated[slot] = request.generated
        self.arrival[slot] = request.arrival_time
        self.first_token[slot] = (
            np.nan if request.first_token_time is None else request.first_token_time
        )
        self.finish[slot] = np.nan
        self.restarts[slot] = request.restarts
        self.retries[slot] = request.retries
        self.state[slot] = SLOT_WAITING
        self.objs[slot] = request
        self.slots_acquired += 1
        live = self.capacity - len(self.free_slots)
        if live > self.slot_high_water:
            self.slot_high_water = live
            bump_counter("slot_high_water", live)
        self.insort_waiting(slot)
        return slot

    def release(self, slot: int) -> None:
        """Recycle a terminal, materialized slot."""
        self.state[slot] = SLOT_FREE
        self.objs[slot] = None
        self.free_slots.append(slot)

    # -- waiting queue (arrival-sorted, matching the scheduler) --------
    def insort_waiting(self, slot: int, left: bool = False) -> None:
        """Insert into the active waiting region by arrival time.

        ``left=False`` lands after equal arrivals (submission FIFO);
        ``left=True`` lands before them (preempted victims re-admit
        ahead of later arrivals) -- the scalar scheduler's exact rule.
        """
        at = float(self.arrival[slot])
        q = self.wait_q
        lo, hi = self.wait_head, len(q)
        while lo < hi:
            mid = (lo + hi) // 2
            probe = float(self.arrival[q[mid]])
            if probe < at or (not left and probe == at):
                lo = mid + 1
            else:
                hi = mid
        q.insert(lo, slot)

    @property
    def waiting_count(self) -> int:
        return len(self.wait_q) - self.wait_head

    def waiting_head(self) -> Optional[int]:
        if self.wait_head < len(self.wait_q):
            return self.wait_q[self.wait_head]
        return None

    def pop_waiting_head(self) -> int:
        slot = self.wait_q[self.wait_head]
        self.wait_head += 1
        if self.wait_head > 512 and self.wait_head * 2 > len(self.wait_q):
            del self.wait_q[:self.wait_head]
            self.wait_head = 0
        return slot

    def waiting_slots(self) -> List[int]:
        return self.wait_q[self.wait_head:]

    # -- shadow KV accounting ------------------------------------------
    def blocks_needed(self, tokens: int) -> int:
        return -(-tokens // self.block_size)

    def blocks_held(self, slot: int) -> int:
        """Blocks a post-prefill slot holds.

        The block manager's token count for a running request trails its
        ``context_len`` by one (admission allocates the prompt; the
        prefill's first token bumps ``generated`` without an append), so
        a slot with ``generated`` tokens holds
        ``ceil((input + generated - 1) / block_size)`` blocks.
        """
        return self.blocks_needed(
            int(self.input_tokens[slot]) + int(self.generated[slot]) - 1
        )

    def allocate_shadow(self, slot: int) -> int:
        """Charge the admission allocation for ``slot``'s context."""
        needed = self.blocks_needed(
            int(self.input_tokens[slot]) + int(self.generated[slot])
        )
        self.free_blocks -= needed
        return needed

    # -- materialization ------------------------------------------------
    def sync_object(self, slot: int) -> Request:
        """Copy a live slot's progress onto its Request (no transition)."""
        request = self.objs[slot]
        request.generated = int(self.generated[slot])
        first = self.first_token[slot]
        request.first_token_time = None if math.isnan(first) else float(first)
        request.restarts = int(self.restarts[slot])
        return request

    def sync_live_objects(self) -> None:
        """Materialize every live (waiting/running) slot -- called at
        ``advance()`` exit so external observers never see stale state."""
        for slot in self.run_slots:
            if self.state[slot] == SLOT_RUNNING:
                self.sync_object(slot)
        for slot in self.waiting_slots():
            self.sync_object(slot)

    def materialize_terminal(self, slot: int) -> Request:
        """Apply a slot's terminal state to its Request object, firing
        the (legal) lifecycle transition for the auditor."""
        request = self.objs[slot]
        request.restarts = int(self.restarts[slot])
        code = int(self.state[slot])
        if code == SLOT_FINISHED:
            delta = int(self.generated[slot]) - request.generated
            request.record_tokens_bulk(
                delta, float(self.first_token[slot]), float(self.finish[slot])
            )
        else:
            self.sync_object(slot)
            if code != SLOT_RUNNING and code != SLOT_WAITING:
                request._transition(_STATE_OF_CODE[code])
        return request

    # -- aggregate views ------------------------------------------------
    @property
    def has_unfinished(self) -> bool:
        return bool(self.run_slots) or self.wait_head < len(self.wait_q)

    def live_generated_total(self) -> int:
        """Generated-token total over live (non-terminal) slots."""
        total = 0
        for slot in self.run_slots:
            total += int(self.generated[slot])
        for slot in self.waiting_slots():
            total += int(self.generated[slot])
        return total


#: Log-spaced TTFT histogram bin edges for the constant-memory p99
#: estimate: 12 bins per decade from 0.1 us to 100 ks.
_TTFT_EDGES = np.logspace(-7.0, 5.0, 145)


class ReportAggregates:
    """Constant-memory folding sink for ``retain_requests=False`` runs.

    Every terminal request is folded in *retirement order* -- so the
    latency sums can differ from the retained path's feed-order sums in
    the last ulp -- and the p99 TTFT is a histogram upper bound rather
    than an exact order statistic.  Byte-golden comparisons therefore
    always use retained runs; this sink is for scale, not goldens.
    """

    __slots__ = (
        "fed", "finished", "shed", "failed", "retried",
        "sum_ttft", "sum_tpot", "terminal_tokens", "ttft_hist",
        "max_arrival",
    )

    def __init__(self) -> None:
        self.fed = 0
        self.finished = 0
        self.shed = 0
        self.failed = 0
        self.retried = 0
        self.sum_ttft = 0.0
        self.sum_tpot = 0.0
        self.terminal_tokens = 0
        self.ttft_hist = np.zeros(len(_TTFT_EDGES) + 1, dtype=np.int64)
        self.max_arrival = 0.0

    def note_fed(self, request: Request) -> None:
        self.fed += 1
        if request.arrival_time > self.max_arrival:
            self.max_arrival = request.arrival_time

    def fold_terminal(self, request: Request) -> None:
        """Fold one terminal request and let its object be collected."""
        state = request.state
        self.terminal_tokens += request.generated
        if request.retries > 0:
            self.retried += 1
        if state is RequestState.FINISHED:
            self.finished += 1
            ttft = request.ttft
            self.sum_ttft += ttft
            self.sum_tpot += request.tpot
            self.ttft_hist[int(np.searchsorted(_TTFT_EDGES, ttft))] += 1
        elif state is RequestState.SHED:
            self.shed += 1
        elif state is RequestState.FAILED:
            self.failed += 1

    def p99_ttft(self) -> float:
        """Upper-bound p99 TTFT from the log histogram (the nearest-rank
        percentile of the bin upper edges)."""
        total = int(self.ttft_hist.sum())
        if total == 0:
            return 0.0
        rank = max(1, math.ceil(0.99 * total))
        cumulative = np.cumsum(self.ttft_hist)
        bin_index = int(np.searchsorted(cumulative, rank))
        if bin_index >= len(_TTFT_EDGES):
            bin_index = len(_TTFT_EDGES) - 1
        return float(_TTFT_EDGES[bin_index])
