"""KV-cache capacity analysis: static pre-allocation vs PagedAttention.

The motivation Section 4.2 opens with: variable-length requests cause
"GPU memory fragmentation, which reduces the maximum batch size that
the serving system can support".  This module quantifies that claim on
the model:

* a **static** allocator reserves ``max_model_len`` tokens per slot up
  front, so its batch capacity ignores how long requests actually are;
* the **paged** allocator of :mod:`repro.serving.kv_cache` holds only
  each request's live blocks, wasting at most one partial block per
  request.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.models.llama import LlamaConfig, LlamaCostModel
from repro.serving.engine import DEFAULT_BLOCK_SIZE
from repro.serving.request import Request


@dataclass(frozen=True)
class CapacityReport:
    """Concurrent-request capacity under both allocation strategies."""

    kv_pool_tokens: int
    max_model_len: int
    block_size: int
    static_capacity: int
    paged_capacity: int
    mean_request_tokens: float

    @property
    def capacity_gain(self) -> float:
        """The PagedAttention batch-size multiplier."""
        if self.static_capacity == 0:
            return float("inf") if self.paged_capacity else 1.0
        return self.paged_capacity / self.static_capacity


def kv_pool_tokens(model: LlamaCostModel) -> int:
    """Token capacity of the device's free HBM after weights."""
    return model.max_kv_tokens()


def static_capacity(pool_tokens: int, max_model_len: int) -> int:
    """Slots a static allocator can pre-reserve."""
    if max_model_len <= 0:
        raise ValueError("max_model_len must be positive")
    return pool_tokens // max_model_len


def paged_capacity(
    pool_tokens: int,
    request_lengths: Sequence[int],
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> int:
    """Concurrent requests the paged allocator holds.

    Requests are admitted in order until the block pool is exhausted;
    each occupies ``ceil(len / block_size)`` blocks.
    """
    if not request_lengths:
        raise ValueError("need at least one request length")
    total_blocks = pool_tokens // block_size
    used = 0
    admitted = 0
    for length in request_lengths:
        needed = math.ceil(length / block_size)
        if used + needed > total_blocks:
            break
        used += needed
        admitted += 1
    return admitted


def compare_capacity(
    config: LlamaConfig,
    model: LlamaCostModel,
    requests: Sequence[Request],
    max_model_len: int = 4096,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> CapacityReport:
    """The Section 4.2 motivation, quantified for one request mix."""
    pool = kv_pool_tokens(model)
    lengths = [r.input_tokens + r.output_tokens for r in requests]
    return CapacityReport(
        kv_pool_tokens=pool,
        max_model_len=max_model_len,
        block_size=block_size,
        static_capacity=static_capacity(pool, max_model_len),
        paged_capacity=paged_capacity(pool, lengths, block_size),
        mean_request_tokens=sum(lengths) / len(lengths),
    )
