"""Shared fixtures."""

import pytest

from repro.hw.device import A100Device, Gaudi2Device


@pytest.fixture(scope="session")
def gaudi():
    return Gaudi2Device()


@pytest.fixture(scope="session")
def a100():
    return A100Device()
