"""Per-TPC local memories (1 KB scalar, 80 KB vector)."""

import pytest

from repro.tpc.local_memory import LocalMemory, LocalMemoryError


class TestCapacities:
    def test_scalar_is_1kb(self):
        assert LocalMemory.scalar().capacity == 1024

    def test_vector_is_80kb(self):
        assert LocalMemory.vector().capacity == 80 * 1024

    def test_alignments(self):
        assert LocalMemory.scalar().alignment == 4
        assert LocalMemory.vector().alignment == 128


class TestAllocation:
    def test_allocations_are_aligned(self):
        mem = LocalMemory.vector()
        mem.allocate("a", 100)          # rounds to 128
        assert mem.allocate("b", 128) == 128

    def test_overflow_raises(self):
        mem = LocalMemory.scalar()
        mem.allocate("a", 1000)
        with pytest.raises(LocalMemoryError, match="overflow"):
            mem.allocate("b", 100)

    def test_duplicate_label_raises(self):
        mem = LocalMemory.vector()
        mem.allocate("x", 128)
        with pytest.raises(LocalMemoryError, match="already allocated"):
            mem.allocate("x", 128)

    def test_non_positive_size_raises(self):
        with pytest.raises(LocalMemoryError):
            LocalMemory.vector().allocate("x", 0)

    def test_free_tracks_usage(self):
        mem = LocalMemory.vector()
        mem.allocate("a", 1024)
        assert mem.used == 1024
        assert mem.free == 80 * 1024 - 1024

    def test_offset_lookup(self):
        mem = LocalMemory.vector()
        mem.allocate("a", 256)
        mem.allocate("b", 256)
        assert mem.offset_of("b") == 256

    def test_unknown_label_raises(self):
        with pytest.raises(LocalMemoryError, match="unknown"):
            LocalMemory.vector().offset_of("nope")


class TestAccessChecking:
    def test_in_bounds_aligned_access_ok(self):
        mem = LocalMemory.vector()
        mem.allocate("buf", 1024)
        mem.check_access("buf", 128, 256)

    def test_misaligned_access_raises(self):
        mem = LocalMemory.vector()
        mem.allocate("buf", 1024)
        with pytest.raises(LocalMemoryError, match="alignment"):
            mem.check_access("buf", 64, 128)

    def test_out_of_bounds_raises(self):
        mem = LocalMemory.vector()
        mem.allocate("buf", 256)
        with pytest.raises(LocalMemoryError, match="outside"):
            mem.check_access("buf", 128, 256)

    def test_reset_clears_everything(self):
        mem = LocalMemory.vector()
        mem.allocate("a", 512)
        mem.reset()
        assert mem.used == 0
        mem.allocate("a", 512)  # reusable after reset
