"""Gaudi-2 MME model (Figures 4, 5, 7)."""

import pytest

from repro.hw.mme import DEFAULT_GEOMETRIES, MmeModel
from repro.hw.spec import DType, GAUDI2_SPEC


@pytest.fixture(scope="module")
def mme():
    return MmeModel()


class TestConfigSelection:
    def test_square_gemm_uses_full_array(self, mme):
        config = mme.select_config(4096, 4096, 4096)
        assert config.geometry.active_macs == GAUDI2_SPEC.matrix.total_macs
        assert not config.power_gated

    def test_tall_skinny_picks_tall_geometry(self, mme):
        config = mme.select_config(8192, 8192, 16)
        assert config.geometry.height > config.geometry.width

    def test_short_wide_picks_wide_geometry(self, mme):
        config = mme.select_config(16, 8192, 8192)
        assert config.geometry.width > config.geometry.height

    def test_tiny_gemm_power_gates(self, mme):
        config = mme.select_config(64, 64, 64)
        assert config.power_gated

    def test_geometry_set_matches_figure7a(self):
        labels = {g.label for g in DEFAULT_GEOMETRIES}
        assert {"256x256x2", "512x256", "1024x128", "128x128"} <= labels


class TestGemmEstimates:
    def test_peak_utilization_at_8192_matches_paper(self, mme):
        """Paper: 429 TFLOPS = 99.3 % of peak at M=K=N=8192."""
        estimate = mme.gemm(8192, 8192, 8192)
        assert estimate.achieved_flops / 1e12 == pytest.approx(429, abs=4)
        assert estimate.utilization == pytest.approx(0.993, abs=0.01)

    def test_small_gemm_low_utilization(self, mme):
        assert mme.gemm(256, 256, 256).utilization < 0.3

    def test_irregular_gemm_memory_bound(self, mme):
        estimate = mme.gemm(8192, 8192, 16)
        assert estimate.memory_bound

    def test_square_gemm_compute_bound(self, mme):
        assert not mme.gemm(4096, 4096, 4096).memory_bound

    def test_time_monotone_in_k(self, mme):
        assert mme.gemm_time(1024, 2048, 1024) > mme.gemm_time(1024, 1024, 1024)

    def test_fp32_slower_than_bf16(self, mme):
        bf16 = mme.gemm_time(2048, 2048, 2048, DType.BF16)
        fp32 = mme.gemm_time(2048, 2048, 2048, DType.FP32)
        assert fp32 > 2 * bf16

    def test_invalid_shape_raises(self, mme):
        with pytest.raises(ValueError):
            mme.gemm(0, 128, 128)

    def test_active_mac_fraction_of_gated_config(self, mme):
        estimate = mme.gemm(64, 64, 64)
        assert estimate.active_mac_fraction < 1.0


class TestConfigurability:
    def test_configurable_beats_fixed_on_skinny_shapes(self, mme):
        """Figure 7(c): the configurable MME wins on small-N GEMMs."""
        for n in (32, 64, 128):
            configurable = mme.gemm(16384, 16384, n).utilization
            fixed = mme.fixed_array_utilization(16384, 16384, n)
            assert configurable > fixed

    def test_gain_up_to_15_points(self, mme):
        """Paper: up to ~15 pp improvement vs the fixed array."""
        gains = [
            mme.gemm(16384, 16384, n).utilization
            - mme.fixed_array_utilization(16384, 16384, n)
            for n in (32, 64, 128, 256, 512)
        ]
        assert 0.05 < max(gains) < 0.25

    def test_non_configurable_model_has_one_geometry(self):
        fixed = MmeModel(configurable=False)
        assert len(fixed.geometries) == 1
        assert fixed.geometries[0].label == "256x256x2"

    def test_fixed_never_beats_configurable(self, mme):
        fixed = MmeModel(configurable=False)
        for shape in [(512, 4096, 64), (4096, 512, 4096), (128, 128, 128)]:
            assert mme.gemm_time(*shape) <= fixed.gemm_time(*shape) + 1e-12


class TestBatchedGemm:
    def test_batched_equals_single_at_batch_one(self, mme):
        single = mme.gemm(512, 512, 512)
        batched = mme.batched_gemm(1, 512, 512, 512)
        assert batched.time == pytest.approx(single.time, rel=0.01)

    def test_batching_improves_utilization_of_small_gemms(self, mme):
        single = mme.gemm(128, 128, 128)
        batched = mme.batched_gemm(64, 128, 128, 128)
        assert batched.utilization > single.utilization

    def test_invalid_batch_raises(self, mme):
        with pytest.raises(ValueError):
            mme.batched_gemm(0, 128, 128, 128)
