"""Public-API integrity: exports resolve, docstrings exist.

Deliverable (e) of the reproduction: doc comments on every public item.
These tests make that a build invariant rather than a hope.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

_PACKAGES = [
    "repro",
    "repro.hw",
    "repro.tpc",
    "repro.cuda",
    "repro.comm",
    "repro.graph",
    "repro.kernels",
    "repro.models",
    "repro.serving",
    "repro.core",
    "repro.figures",
    "repro.tools",
    "repro.obs",
    "repro.api",
    "repro.surrogate",
]


def _iter_modules():
    for package_name in _PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__, package_name + "."):
            yield importlib.import_module(info.name)


class TestExports:
    @pytest.mark.parametrize("package_name", _PACKAGES)
    def test_all_entries_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.__all__ lists {name!r}"

    def test_top_level_quick_access(self):
        assert repro.get_device("gaudi2").name == "Gaudi-2"
        assert repro.DType.BF16.itemsize == 2


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            module.__name__ for module in _iter_modules() if not module.__doc__
        ]
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in _iter_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"undocumented public items: {undocumented}"

    def test_public_methods_documented_on_key_classes(self):
        from repro.hw.device import Device
        from repro.serving.engine import LlmServingEngine
        from repro.tpc.builder import TpcKernelBuilder

        for cls in (Device, LlmServingEngine, TpcKernelBuilder):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert inspect.getdoc(member), f"{cls.__name__}.{name} lacks a docstring"
