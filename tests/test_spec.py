"""Device spec sheets (Table 1)."""

import pytest

from repro.hw.spec import (
    A100_SPEC,
    GAUDI2_SPEC,
    DType,
    get_spec,
    spec_comparison_rows,
)


class TestDType:
    def test_itemsizes(self):
        assert DType.BF16.itemsize == 2
        assert DType.FP16.itemsize == 2
        assert DType.FP32.itemsize == 4
        assert DType.INT8.itemsize == 1


class TestTable1Values:
    """The spec sheets must reproduce Table 1 exactly."""

    def test_matrix_peaks(self):
        assert GAUDI2_SPEC.matrix.peak(DType.BF16) == pytest.approx(432e12)
        assert A100_SPEC.matrix.peak(DType.BF16) == pytest.approx(312e12)

    def test_vector_peaks(self):
        assert GAUDI2_SPEC.vector.peak(DType.BF16) == pytest.approx(11e12)
        assert A100_SPEC.vector.peak(DType.BF16) == pytest.approx(39e12)

    def test_matrix_ratio_is_1_4x(self):
        ratio = GAUDI2_SPEC.matrix.peak(DType.BF16) / A100_SPEC.matrix.peak(DType.BF16)
        assert ratio == pytest.approx(1.4, abs=0.05)

    def test_hbm_capacity(self):
        assert GAUDI2_SPEC.memory.capacity_bytes == 96 * 1024**3
        assert A100_SPEC.memory.capacity_bytes == 80 * 1024**3

    def test_hbm_bandwidth(self):
        assert GAUDI2_SPEC.memory.bandwidth == pytest.approx(2.45e12)
        assert A100_SPEC.memory.bandwidth == pytest.approx(2.0e12)

    def test_sram_capacity(self):
        assert GAUDI2_SPEC.memory.sram_bytes == 48 * 1024**2
        assert A100_SPEC.memory.sram_bytes == 40 * 1024**2

    def test_tdp(self):
        assert GAUDI2_SPEC.power.tdp_watts == 600.0
        assert A100_SPEC.power.tdp_watts == 400.0

    def test_interconnect_bandwidth_parity(self):
        assert (
            GAUDI2_SPEC.interconnect.per_device_bandwidth
            == A100_SPEC.interconnect.per_device_bandwidth
        )


class TestMicroarchitecture:
    def test_gaudi_mme_mac_count(self):
        assert GAUDI2_SPEC.matrix.total_macs == 2 * 256 * 256

    def test_mme_clock_consistent_with_peak(self):
        derived = 2 * GAUDI2_SPEC.matrix.total_macs * GAUDI2_SPEC.matrix.clock_hz
        assert derived == pytest.approx(GAUDI2_SPEC.matrix.peak(DType.BF16))

    def test_tpc_simd_width(self):
        assert GAUDI2_SPEC.vector.simd_width_bits == 2048
        assert GAUDI2_SPEC.vector.lanes(DType.BF16) == 128
        assert GAUDI2_SPEC.vector.lanes(DType.FP32) == 64

    def test_tpc_instruction_latency_is_4(self):
        assert GAUDI2_SPEC.vector.instruction_latency == 4

    def test_access_granularities(self):
        assert GAUDI2_SPEC.memory.min_access_bytes == 256
        assert A100_SPEC.memory.min_access_bytes == 32

    def test_gaudi_configurable_a100_not(self):
        assert GAUDI2_SPEC.matrix.configurable
        assert not A100_SPEC.matrix.configurable

    def test_only_a100_sram_is_cache(self):
        assert A100_SPEC.memory.sram_is_cache
        assert not GAUDI2_SPEC.memory.sram_is_cache

    def test_gaudi_links_per_pair(self):
        assert GAUDI2_SPEC.interconnect.links_per_pair == 3


class TestLookup:
    @pytest.mark.parametrize("alias", ["gaudi2", "Gaudi-2", "hpu", "HPU"])
    def test_gaudi_aliases(self, alias):
        assert get_spec(alias).name == "Gaudi-2"

    @pytest.mark.parametrize("alias", ["a100", "cuda", "gpu"])
    def test_a100_aliases(self, alias):
        assert get_spec(alias).name == "A100"

    def test_unknown_device_raises_typed_config_error(self):
        from repro.audit.errors import ConfigError

        with pytest.raises(ConfigError, match="unknown backend"):
            get_spec("tpu")

    def test_unknown_device_is_still_a_value_error(self):
        with pytest.raises(ValueError):
            get_spec("tpu")


class TestComparisonRows:
    def test_has_eight_rows(self):
        assert len(spec_comparison_rows()) == 8

    def test_power_ratio_row(self):
        rows = dict((r[0], r[3]) for r in spec_comparison_rows())
        assert rows["Power (Watts)"] == "1.5x"
