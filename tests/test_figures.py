"""Figure/table regeneration harness (fast mode)."""

import pytest

from repro.figures import FIGURES, run_figure
from repro.figures.common import FigureResult, register_figure

_ALL_IDS = (
    "table1", "table2", "fig04", "fig05", "fig07", "fig08", "fig09",
    "fig10", "fig11", "fig12", "fig13", "fig15", "fig17", "headline",
)


class TestRegistry:
    def test_every_evaluation_artifact_registered(self):
        assert set(_ALL_IDS) <= set(FIGURES)

    def test_double_registration_rejected(self):
        with pytest.raises(ValueError):
            register_figure("table1")(lambda fast: None)

    def test_unknown_figure(self):
        from repro.figures.common import get_figure

        with pytest.raises(KeyError):
            get_figure("fig99")


@pytest.mark.parametrize("figure_id", _ALL_IDS)
def test_figure_runs_and_is_well_formed(figure_id):
    result = run_figure(figure_id, fast=True)
    assert isinstance(result, FigureResult)
    assert result.figure_id == figure_id
    assert result.rows
    assert result.summary
    assert result.text


class TestFigureHeadlines:
    """Spot-check the headline values each figure summary must carry."""

    def test_fig04_gaudi_peak(self):
        summary = run_figure("fig04", fast=True).summary
        assert summary["gaudi_peak_utilization_largest_square"] == pytest.approx(
            0.993, abs=0.02
        )
        assert summary["gaudi_wins_all_square_shapes"] == 1.0

    def test_fig05_gaudi_utilization_advantage(self):
        summary = run_figure("fig05", fast=True).summary
        assert summary["mean_square_utilization_delta"] > 0.0

    def test_fig07_configurability_gain(self):
        summary = run_figure("fig07", fast=True).summary
        assert 0.05 < summary["max_configurability_gain"] < 0.25
        assert summary["num_power_gated_configs"] >= 1

    def test_fig08_saturation_points(self):
        summary = run_figure("fig08", fast=True).summary
        assert summary["chip_saturation_gflops_add"] == pytest.approx(330, rel=0.1)
        assert summary["chip_saturation_gflops_scale"] == pytest.approx(530, rel=0.1)
        assert summary["chip_saturation_gflops_triad"] == pytest.approx(670, rel=0.1)
        assert summary["unroll_gain_scale"] > summary["unroll_gain_add"]

    def test_fig08_intensity_split(self):
        summary = run_figure("fig08", fast=True).summary
        assert summary["intensity_sat_util_add_gaudi"] == pytest.approx(0.5, abs=0.07)
        assert summary["intensity_sat_util_triad_gaudi"] == pytest.approx(0.99, abs=0.07)
        assert summary["intensity_sat_util_add_a100"] == pytest.approx(0.5, abs=0.07)

    def test_fig09_small_vector_gap(self):
        summary = run_figure("fig09", fast=True).summary
        assert summary["gaudi_gather_util_large"] == pytest.approx(0.64, abs=0.08)
        assert summary["a100_gather_util_large"] == pytest.approx(0.72, abs=0.05)
        assert summary["small_vector_gap"] > 1.5

    def test_fig10_wins(self):
        summary = run_figure("fig10", fast=True).summary
        assert summary["gaudi_wins_of_6_at_8_devices"] == 5.0
        assert summary["gaudi_busbw_scales_with_devices"] == 1.0
        assert summary["a100_allreduce_util_2dev"] > 4 * summary["gaudi_allreduce_util_2dev"]

    def test_fig11_recsys_deficit(self):
        summary = run_figure("fig11", fast=True).summary
        assert summary["rm1_mean_speedup"] < 1.05
        assert summary["rm2_mean_speedup"] < 1.05
        assert summary["max_speedup"] > 1.2
        assert summary["rm2_min_speedup_small_vectors"] < 0.65

    def test_fig12_llm_speedups(self):
        summary = run_figure("fig12", fast=True).summary
        assert 1.2 < summary["single_device_mean_speedup"] < 1.6
        assert summary["tp8_mean_speedup"] > summary["tp2_mean_speedup"]

    def test_fig13_energy(self):
        summary = run_figure("fig13", fast=True).summary
        assert 1.25 < summary["single_device_mean_energy_efficiency"] < 1.7
        assert summary["multi_device_mean_power_ratio"] == pytest.approx(0.88, abs=0.08)

    def test_fig15_embedding(self):
        summary = run_figure("fig15", fast=True).summary
        assert summary["batched_over_single_mean"] > 1.3
        assert 0.55 < summary["batched_peak_utilization"] < 0.75
        assert summary["batched_vs_a100_small_vectors"] < 0.6

    def test_fig17_vllm(self):
        summary = run_figure("fig17", fast=True).summary
        assert 4.0 < summary["opt_over_base_mean"] < 9.0
        assert summary["opt_over_base_max_padding"] > 20
        assert 0.35 < summary["opt_vs_a100_mean"] < 0.65
        assert 0.8 < summary["e2e_throughput_ratio"] < 1.6
