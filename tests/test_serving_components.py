"""Requests, datasets, block tables, and the scheduler."""

import numpy as np
import pytest

from repro.serving.block_table import build_block_list, build_block_table
from repro.serving.dataset import dynamic_sonnet_requests, fixed_length_requests
from repro.serving.kv_cache import BlockManager
from repro.serving.request import Request, RequestState
from repro.serving.scheduler import ContinuousBatchingScheduler


class TestRequest:
    def test_lifecycle_and_metrics(self):
        request = Request(request_id=0, input_tokens=10, output_tokens=3)
        request.state = RequestState.RUNNING
        request.record_token(1.0)
        request.record_token(2.0)
        request.record_token(4.0)
        assert request.state is RequestState.FINISHED
        assert request.ttft == 1.0
        assert request.tpot == pytest.approx((4.0 - 1.0) / 2)

    def test_single_token_tpot_zero(self):
        request = Request(0, 10, 1, arrival_time=0.5)
        request.state = RequestState.RUNNING
        request.record_token(1.5)
        assert request.ttft == 1.0
        assert request.tpot == 0.0

    def test_token_on_non_running_raises(self):
        request = Request(0, 10, 1)
        with pytest.raises(RuntimeError):
            request.record_token(1.0)

    def test_metrics_before_completion_raise(self):
        request = Request(0, 10, 2)
        with pytest.raises(RuntimeError):
            _ = request.ttft

    def test_invalid_lengths(self):
        with pytest.raises(ValueError):
            Request(0, 0, 5)


class TestDatasets:
    def test_fixed_length(self):
        requests = fixed_length_requests(5, input_len=100, output_len=25)
        assert len(requests) == 5
        assert all(r.input_tokens == 100 and r.output_tokens == 25 for r in requests)

    def test_dynamic_sonnet_deterministic(self):
        a = dynamic_sonnet_requests(50, seed=3)
        b = dynamic_sonnet_requests(50, seed=3)
        assert [r.input_tokens for r in a] == [r.input_tokens for r in b]

    def test_dynamic_sonnet_variability(self):
        requests = dynamic_sonnet_requests(200, seed=1)
        inputs = np.array([r.input_tokens for r in requests])
        assert inputs.std() > 100          # wide spread
        assert inputs.min() >= 64
        assert inputs.max() <= 3072

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            dynamic_sonnet_requests(0)


class TestBlockTables:
    def test_block_table_padding(self):
        table = build_block_table([[1, 2, 3], [4]])
        assert table.table.shape == (2, 3)
        assert table.padding_fraction == pytest.approx(2 / 6)
        assert table.effectual_entries == 4

    def test_block_list_flat(self):
        blist = build_block_list([[1, 2, 3], [4]])
        np.testing.assert_array_equal(blist.blocks, [1, 2, 3, 4])
        np.testing.assert_array_equal(blist.request_offsets, [0, 3, 4])

    def test_block_list_has_no_padding(self):
        table = build_block_table([[1] * 8, [2]])
        blist = build_block_list([[1] * 8, [2]])
        assert blist.total_entries == table.effectual_entries

    def test_empty_request_rejected(self):
        with pytest.raises(ValueError):
            build_block_table([[1], []])
        with pytest.raises(ValueError):
            build_block_list([])


class TestScheduler:
    def _scheduler(self, max_batch=4, blocks=64):
        return ContinuousBatchingScheduler(
            BlockManager(num_blocks=blocks, block_size=128), max_decode_batch=max_batch
        )

    def test_admits_up_to_max_batch(self):
        scheduler = self._scheduler(max_batch=2)
        for i in range(4):
            scheduler.submit(Request(i, 128, 8))
        step = scheduler.step(0.0)
        assert len(step.new_requests) == 2
        assert len(scheduler.waiting) == 2

    def test_admission_blocked_by_kv_capacity(self):
        scheduler = self._scheduler(max_batch=8, blocks=2)
        scheduler.submit(Request(0, 256, 8))   # takes both blocks
        scheduler.submit(Request(1, 128, 8))
        step = scheduler.step(0.0)
        assert [r.request_id for r in step.new_requests] == [0]

    def test_finished_requests_release_blocks(self):
        scheduler = self._scheduler(max_batch=1, blocks=1)
        first = Request(0, 128, 1)
        scheduler.submit(first)
        scheduler.submit(Request(1, 128, 1))
        scheduler.step(0.0)
        first.record_token(1.0)  # finishes
        step = scheduler.step(1.0)
        assert [r.request_id for r in step.new_requests] == [1]

    def test_respects_arrival_times(self):
        scheduler = self._scheduler()
        scheduler.submit(Request(0, 128, 4, arrival_time=5.0))
        assert not scheduler.step(0.0).has_work
        assert scheduler.step(5.0).new_requests

    def test_submit_running_request_rejected(self):
        scheduler = self._scheduler()
        request = Request(0, 128, 4)
        request.state = RequestState.RUNNING
        with pytest.raises(ValueError):
            scheduler.submit(request)

    def test_invalid_max_batch(self):
        with pytest.raises(ValueError):
            ContinuousBatchingScheduler(BlockManager(4, 128), 0)
