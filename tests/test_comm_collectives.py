"""Collective algorithms and bus-bandwidth conventions."""

import pytest

from repro.comm.busbw import bus_bandwidth_factor
from repro.comm.collectives import (
    CollectiveOp,
    collective_time,
    mesh_collective_time,
    ring_collective_time,
)
from repro.comm.topology import P2PMeshTopology, SwitchTopology

_MESH = P2PMeshTopology()
_SWITCH = SwitchTopology()
_SIZE = 32 << 20


class TestBusBandwidthFactors:
    def test_allreduce_factor(self):
        assert bus_bandwidth_factor(CollectiveOp.ALL_REDUCE, 8) == pytest.approx(2 * 7 / 8)

    def test_gather_family_factor(self):
        for op in (CollectiveOp.ALL_GATHER, CollectiveOp.REDUCE_SCATTER,
                   CollectiveOp.ALL_TO_ALL):
            assert bus_bandwidth_factor(op, 4) == pytest.approx(3 / 4)

    def test_rooted_ops_factor_one(self):
        assert bus_bandwidth_factor(CollectiveOp.REDUCE, 8) == 1.0
        assert bus_bandwidth_factor(CollectiveOp.BROADCAST, 8) == 1.0

    def test_invalid_participants(self):
        with pytest.raises(ValueError):
            bus_bandwidth_factor(CollectiveOp.ALL_REDUCE, 1)


class TestMeshAlgorithms:
    def test_allreduce_is_two_phases(self):
        ar = mesh_collective_time(CollectiveOp.ALL_REDUCE, _SIZE, 8, _MESH)
        ag = mesh_collective_time(CollectiveOp.ALL_GATHER, _SIZE, 8, _MESH)
        assert ar.time == pytest.approx(2 * ag.time)

    def test_time_decreases_with_more_participants(self):
        """More participants -> more links -> faster on the mesh."""
        t2 = mesh_collective_time(CollectiveOp.ALL_REDUCE, _SIZE, 2, _MESH).time
        t8 = mesh_collective_time(CollectiveOp.ALL_REDUCE, _SIZE, 8, _MESH).time
        assert t8 < t2 / 3

    def test_small_message_latency_bound(self):
        small = mesh_collective_time(CollectiveOp.ALL_REDUCE, 2048, 8, _MESH)
        assert small.time >= 2 * _MESH.base_latency

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            mesh_collective_time(CollectiveOp.ALL_REDUCE, 0, 8, _MESH)


class TestRingAlgorithms:
    def test_allreduce_volume_factor(self):
        result = ring_collective_time(CollectiveOp.ALL_REDUCE, _SIZE, 8, _SWITCH)
        expected_bw_time = 2 * _SIZE * 7 / 8 / 300e9
        assert result.time == pytest.approx(
            expected_bw_time + result.steps * _SWITCH.base_latency
        )

    def test_ring_time_stable_across_participants(self):
        """NVSwitch keeps bandwidth flat regardless of device count."""
        t2 = ring_collective_time(CollectiveOp.ALL_GATHER, _SIZE, 2, _SWITCH).time
        t8 = ring_collective_time(CollectiveOp.ALL_GATHER, _SIZE, 8, _SWITCH).time
        assert t8 == pytest.approx(t2 * (7 / 8) / (1 / 2), rel=0.1)

    def test_steps_counted(self):
        assert ring_collective_time(CollectiveOp.ALL_REDUCE, _SIZE, 8, _SWITCH).steps == 14
        assert ring_collective_time(CollectiveOp.BROADCAST, _SIZE, 8, _SWITCH).steps == 7


class TestDispatch:
    def test_dispatch_by_topology(self):
        mesh_result = collective_time(CollectiveOp.REDUCE, _SIZE, 4, _MESH)
        switch_result = collective_time(CollectiveOp.REDUCE, _SIZE, 4, _SWITCH)
        assert mesh_result.time != switch_result.time

    def test_unknown_topology_rejected(self):
        class Fake:
            pass

        with pytest.raises(TypeError):
            collective_time(CollectiveOp.REDUCE, _SIZE, 4, Fake())

    def test_algorithm_bandwidth(self):
        result = collective_time(CollectiveOp.ALL_GATHER, _SIZE, 8, _SWITCH)
        assert result.algorithm_bandwidth == pytest.approx(_SIZE / result.time)
