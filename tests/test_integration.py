"""Cross-module integration: the full stacks wired end to end."""

import pytest

from repro import get_device
from repro.figures import generate_all
from repro.graph import Engine, Graph, GraphCompiler
from repro.models.dlrm import DlrmCostModel, RM2_CONFIG
from repro.models.llama import DecodeAttention, LLAMA_3_1_8B, LlamaCostModel
from repro.serving import LlmServingEngine, RecSysServer, dynamic_sonnet_requests


class TestPublicApi:
    def test_quickstart_from_docstring(self):
        """The README/module-docstring quickstart must keep working."""
        gaudi, a100 = get_device("gaudi2"), get_device("a100")
        assert gaudi.gemm(8192, 8192, 8192).utilization == pytest.approx(0.997, abs=0.01)
        assert a100.gemm(8192, 8192, 8192).utilization == pytest.approx(0.91, abs=0.03)

    def test_version_exposed(self):
        import repro

        assert repro.__version__


class TestGraphCompilerOverDeviceModels:
    def test_gemm_activation_pipeline_on_real_costs(self, gaudi):
        """Build a graph from real device-model costs and compile it."""
        gemm_estimate = gaudi.gemm(4096, 4096, 4096)
        graph = Graph("layer")
        gemm = graph.add_op(
            "gemm", Engine.MME, gemm_estimate.time,
            input_bytes=2 * 2 * 4096 * 4096, output_bytes=2 * 4096 * 4096,
            sliceable=True,
        )
        gemm.annotations["gemm_shape"] = (1, 4096, 4096, 4096)
        graph.add_op(
            "gelu", Engine.TPC, 4096 * 4096 * 4 / 5.5e12,
            input_bytes=2 * 4096 * 4096, output_bytes=2 * 4096 * 4096,
            inputs=[gemm], fusable=True, sliceable=True,
        )
        compiled = GraphCompiler().compile(graph)
        assert compiled.total_time < gemm_estimate.time * 1.3
        assert compiled.graph.ops[0].annotations["pipelined"]


class TestServingPipelines:
    def test_llm_serving_full_stack(self, gaudi):
        """Requests -> scheduler -> paged KV -> cost model -> metrics."""
        engine = LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, gaudi),
            DecodeAttention.PAGED_OPT,
            max_decode_batch=8,
        )
        report = engine.run(dynamic_sonnet_requests(10, seed=11))
        stats = engine.block_manager.stats()
        assert stats.allocated_blocks == 0  # everything freed at the end
        assert report.engine_steps > 0

    def test_recsys_serving_full_stack(self, gaudi, a100):
        for device in (gaudi, a100):
            report = RecSysServer(DlrmCostModel(RM2_CONFIG, device)).serve_batch(1024)
            assert report.latency > 0
            assert report.average_power >= device.spec.power.idle_watts


class TestFullReproduction:
    def test_generate_all_produces_every_artifact(self):
        results = generate_all(fast=True)
        assert len(results) == 16
        for figure_id, result in results.items():
            assert result.rows, f"{figure_id} produced no rows"
            assert result.summary, f"{figure_id} produced no summary"

    def test_generate_all_parallel_matches_serial(self):
        serial = generate_all(fast=True, workers=1)
        parallel = generate_all(fast=True, workers=2)
        assert list(serial) == list(parallel)  # deterministic ordering
        assert serial == parallel
