"""TPC instruction-set model."""


from repro.hw.spec import DType
from repro.tpc.isa import ARCH_LATENCY, Instruction, MemoryKind, Opcode, Slot


class TestSlots:
    def test_loads_use_load_slot(self):
        assert Instruction(Opcode.LD_TNSR, dest="v0", access_bytes=256).slot is Slot.LOAD
        assert Instruction(Opcode.LD_G, access_bytes=256).slot is Slot.LOAD

    def test_stores_use_store_slot(self):
        assert Instruction(Opcode.ST_TNSR, sources=("v0",), access_bytes=256).slot is Slot.STORE

    def test_arithmetic_uses_vector_slot(self):
        for op in (Opcode.ADD, Opcode.MUL, Opcode.MAC, Opcode.EXP):
            assert Instruction(op, dest="v0").slot is Slot.VECTOR

    def test_scalar_ops_use_scalar_slot(self):
        assert Instruction(Opcode.S_ADD, dest="s0").slot is Slot.SCALAR
        assert Instruction(Opcode.LOOP_END).slot is Slot.SCALAR


class TestMemoryKinds:
    def test_stream_vs_random(self):
        assert Instruction(Opcode.LD_TNSR, access_bytes=256).memory_kind is MemoryKind.STREAM_LOAD
        assert Instruction(Opcode.LD_G, access_bytes=256).memory_kind is MemoryKind.RANDOM_LOAD
        assert Instruction(Opcode.ST_G, access_bytes=64).memory_kind is MemoryKind.RANDOM_STORE

    def test_alu_has_no_memory_kind(self):
        assert Instruction(Opcode.ADD, dest="v0").memory_kind is MemoryKind.NONE

    def test_is_load_is_store(self):
        assert Instruction(Opcode.LD_G, access_bytes=64).is_load
        assert Instruction(Opcode.ST_TNSR, access_bytes=64).is_store
        assert not Instruction(Opcode.ADD, dest="v0").is_load


class TestFlops:
    def test_mac_counts_two_flops_per_lane(self):
        mac = Instruction(Opcode.MAC, dest="v0", dtype=DType.BF16)
        add = Instruction(Opcode.ADD, dest="v0", dtype=DType.BF16)
        assert mac.flops == 2 * add.flops

    def test_bf16_has_128_lanes(self):
        assert Instruction(Opcode.ADD, dest="v0", dtype=DType.BF16).flops == 128

    def test_fp32_has_64_lanes(self):
        assert Instruction(Opcode.ADD, dest="v0", dtype=DType.FP32).flops == 64

    def test_moves_are_free(self):
        assert Instruction(Opcode.MOV, dest="v0").flops == 0
        assert Instruction(Opcode.LD_TNSR, dest="v0", access_bytes=256).flops == 0


class TestDefaults:
    def test_default_latency_is_architectural(self):
        assert Instruction(Opcode.ADD, dest="v0").latency == ARCH_LATENCY == 4

    def test_str_mentions_opcode_and_slot(self):
        text = str(Instruction(Opcode.MAC, dest="v2", sources=("v0", "v1")))
        assert "mac" in text and "vector" in text
