"""Fault plans, the injector, and degraded-fabric collectives."""

import pytest

from repro.comm import (
    CollectiveOp,
    DegradedMeshTopology,
    DegradedSwitchTopology,
    FabricHealth,
    HcclLibrary,
    NcclLibrary,
    P2PMeshTopology,
    SwitchTopology,
    degraded_collective_time,
    effective_participants,
)
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.models.tensor_parallel import TensorParallelConfig


class TestFaultPlan:
    def test_builder_chains_and_orders(self):
        plan = (
            FaultPlan(seed=1)
            .fail_device(3, at=2.0, recover_at=5.0)
            .throttle_hbm(0.5, at=1.0, until=4.0)
        )
        times = [e.time for e in plan.scheduled()]
        assert times == sorted(times)
        assert [e.kind for e in plan.scheduled()] == [
            FaultKind.HBM_THROTTLE,
            FaultKind.DEVICE_FAIL,
            FaultKind.HBM_RESTORE,
            FaultKind.DEVICE_RECOVER,
        ]

    def test_flap_alternates_down_up(self):
        plan = FaultPlan().flap_link(0, 1, at=1.0, period=0.5, cycles=2)
        kinds = [e.kind for e in plan.scheduled()]
        assert kinds == [
            FaultKind.LINK_DEGRADE, FaultKind.LINK_RESTORE,
            FaultKind.LINK_DEGRADE, FaultKind.LINK_RESTORE,
        ]
        assert plan.scheduled()[0].factor == 0.0

    def test_recover_before_fail_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().fail_device(0, at=2.0, recover_at=1.0)

    def test_kernel_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(kernel_fault_rate=1.0)

    def test_from_specs_round_trip(self):
        plan = FaultPlan.from_specs(
            seed=7,
            fail_device=["3@t=2.0,recover=5.0"],
            degrade_link=["0-1@t=1.0,factor=0.5,until=3.0"],
            throttle_hbm=["0.7@t=1.5"],
            straggler=["2@t=0.5,factor=0.8"],
            kernel_fault_rate=0.1,
        )
        assert plan.seed == 7
        assert plan.kernel_fault_rate == 0.1
        assert len(plan.events) == 6
        fail = plan.scheduled()[3]
        assert fail.kind is FaultKind.DEVICE_FAIL and fail.device == 3

    @pytest.mark.parametrize("spec", [
        "3",                    # no @
        "3@2.0",                # not key=value
        "3@t=abc",              # not a number
        "3@t=1.0,bogus=2",      # unknown key
        "3@recover=5.0",        # missing required t
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.from_specs(fail_device=[spec])

    def test_bad_link_spec_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_specs(degrade_link=["01@t=1.0,factor=0.5"])


class TestFaultInjector:
    def test_advance_applies_in_time_order(self):
        plan = FaultPlan().fail_device(3, at=2.0, recover_at=5.0)
        injector = FaultInjector(plan, num_devices=8)
        assert injector.advance(1.0).device_failures == 0
        assert injector.alive_devices() == 8
        summary = injector.advance(2.5)
        assert summary.device_failures == 1
        assert injector.alive_devices() == 7
        assert not injector.device_up(3)
        assert injector.advance(5.0).device_recoveries == 1
        assert injector.alive_devices() == 8
        assert injector.exhausted

    def test_double_fail_counts_once(self):
        plan = FaultPlan().fail_device(3, at=1.0).fail_device(3, at=2.0)
        injector = FaultInjector(plan, num_devices=8)
        summary = injector.advance(3.0)
        assert summary.device_failures == 1
        assert injector.alive_devices() == 7

    def test_compute_slowdown_combines_worst(self):
        plan = (
            FaultPlan()
            .throttle_hbm(0.5, at=1.0)
            .straggler(2, 0.25, at=1.0)
        )
        injector = FaultInjector(plan, num_devices=8)
        assert injector.compute_slowdown() == 1.0
        injector.advance(1.0)
        assert injector.compute_slowdown() == pytest.approx(4.0)

    def test_dead_device_cannot_straggle(self):
        plan = FaultPlan().straggler(2, 0.25, at=0.0).fail_device(2, at=1.0)
        injector = FaultInjector(plan, num_devices=8)
        injector.advance(0.5)
        assert injector.compute_slowdown() == pytest.approx(4.0)
        injector.advance(1.0)
        assert injector.compute_slowdown() == 1.0

    def test_kernel_faults_seeded_deterministic(self):
        def draws(seed):
            injector = FaultInjector(
                FaultPlan(seed=seed, kernel_fault_rate=0.3), num_devices=8
            )
            return [injector.kernel_fault() for _ in range(50)]

        assert draws(3) == draws(3)
        assert draws(3) != draws(4)
        assert any(draws(3)) and not all(draws(3))

    def test_scheduled_kernel_fault_fires_once(self):
        injector = FaultInjector(FaultPlan().kernel_fault_at(1.0), num_devices=8)
        injector.advance(1.0)
        assert injector.kernel_fault()
        assert not injector.kernel_fault()


class TestFabricHealth:
    def test_link_factor_symmetric(self):
        health = FabricHealth()
        health.set_link_factor(1, 0, 0.5)
        assert health.link_factor(0, 1) == 0.5
        health.restore_link(0, 1)
        assert health.link_factor(1, 0) == 1.0

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            FabricHealth().set_link_factor(2, 2, 0.5)

    def test_down_device_links_ignored(self):
        health = FabricHealth()
        health.set_link_factor(0, 1, 0.25)
        health.fail_device(1)
        assert health.worst_link_factor(8) == 1.0
        assert health.alive(8) == 7


class TestDegradedTopologies:
    def test_mesh_port_cliff_from_device_loss(self):
        """The acceptance shape: (alive-1)*3 of 21 ports stay usable."""
        health = FabricHealth()
        mesh = DegradedMeshTopology(P2PMeshTopology(), health)
        healthy = mesh.injection_bandwidth(8)
        health.fail_device(3)
        assert mesh.alive_devices() == 7
        degraded = mesh.injection_bandwidth(7)
        assert degraded / healthy == pytest.approx(6 / 7)

    def test_mesh_degraded_link_gates_pairs(self):
        health = FabricHealth()
        mesh = DegradedMeshTopology(P2PMeshTopology(), health)
        healthy = mesh.pair_bandwidth(8)
        health.set_link_factor(0, 1, 0.5)
        assert mesh.pair_bandwidth(8) == pytest.approx(0.5 * healthy)

    def test_mesh_severed_link_relays_at_half_rate(self):
        health = FabricHealth()
        mesh = DegradedMeshTopology(P2PMeshTopology(), health)
        health.set_link_factor(0, 1, 0.0)
        assert mesh.pair_bandwidth(8) == pytest.approx(
            0.5 * P2PMeshTopology().pair_bandwidth(8)
        )

    def test_switch_flat_under_device_loss(self):
        health = FabricHealth()
        switch = DegradedSwitchTopology(SwitchTopology(), health)
        health.fail_device(3)
        assert switch.alive_devices() == 7
        assert switch.injection_bandwidth(7) == SwitchTopology().injection_bandwidth(7)

    def test_effective_participants(self):
        health = FabricHealth()
        mesh = DegradedMeshTopology(P2PMeshTopology(), health)
        assert effective_participants(mesh, 8) == 8
        assert effective_participants(P2PMeshTopology(), 8) == 8
        health.fail_device(0)
        health.fail_device(1)
        assert effective_participants(mesh, 8) == 6


class TestDegradedCollectives:
    def test_collective_slows_as_mesh_shrinks(self):
        health = FabricHealth()
        mesh = DegradedMeshTopology(P2PMeshTopology(), health)
        size = 64 * 2**20
        healthy = degraded_collective_time(CollectiveOp.ALL_REDUCE, size, 8, mesh)
        health.fail_device(3)
        degraded = degraded_collective_time(CollectiveOp.ALL_REDUCE, size, 8, mesh)
        assert degraded.participants == 7
        assert degraded.algorithm_bandwidth < healthy.algorithm_bandwidth

    def test_lone_survivor_collective_is_free(self):
        health = FabricHealth()
        for device in range(7):
            health.fail_device(device)
        mesh = DegradedMeshTopology(P2PMeshTopology(), health)
        result = degraded_collective_time(CollectiveOp.ALL_REDUCE, 1024, 8, mesh)
        assert result.time == 0.0 and result.steps == 0

    def test_library_rebinding_keeps_tuning(self):
        health = FabricHealth()
        library = HcclLibrary()
        degraded = library.degraded(health)
        assert degraded.protocol_efficiency == library.protocol_efficiency
        assert degraded.name == library.name
        health.fail_device(2)
        assert degraded.alive_participants(8) == 7
        assert library.alive_participants(8) == 8  # original untouched

    def test_nccl_library_degrades_too(self):
        degraded = NcclLibrary().degraded(FabricHealth())
        assert isinstance(degraded.topology, DegradedSwitchTopology)


class TestFaultAwareTensorParallel:
    def test_allreduce_follows_port_cliff(self):
        health = FabricHealth()
        library = HcclLibrary().degraded(health)
        tp = TensorParallelConfig(degree=8, library=library)
        size = 8 * 4096 * 2
        healthy_time = tp.allreduce_time(size)
        health.fail_device(3)
        assert tp.effective_degree() == 7
        degraded_time = tp.allreduce_time(size)
        assert degraded_time != healthy_time
        assert degraded_time == library.all_reduce(size, 7).time

    def test_lone_survivor_skips_collective(self):
        health = FabricHealth()
        for device in range(7):
            health.fail_device(device)
        tp = TensorParallelConfig(degree=8, library=HcclLibrary().degraded(health))
        assert tp.allreduce_time(1 << 20) == 0.0
