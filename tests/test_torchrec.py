"""TorchRec-style multi-device RecSys (and the Gaudi feature gap)."""

import pytest

from repro.models.dlrm import RM1_CONFIG, RM2_CONFIG, DlrmCostModel
from repro.models.torchrec import (
    MultiDeviceUnsupportedError,
    TorchRecShardedDlrm,
    gaudi_multi_device_recsys,
)


class TestFeatureGap:
    def test_gaudi_multi_device_unsupported(self, gaudi):
        """Section 3.5: the Gaudi SDK has no TorchRec backend."""
        with pytest.raises(MultiDeviceUnsupportedError, match="TorchRec"):
            TorchRecShardedDlrm(RM2_CONFIG, gaudi, num_devices=4)

    def test_helper_raises_with_context(self):
        with pytest.raises(MultiDeviceUnsupportedError, match="single device"):
            gaudi_multi_device_recsys(RM1_CONFIG, 8)

    def test_unknown_device_type(self):
        with pytest.raises(TypeError):
            TorchRecShardedDlrm(RM2_CONFIG, object(), num_devices=4)


class TestShardedForward:
    def test_breakdown_structure(self, a100):
        sharded = TorchRecShardedDlrm(RM2_CONFIG, a100, num_devices=4)
        estimate = sharded.forward(global_batch=8192)
        assert set(estimate.breakdown) == {
            "sharded_embedding", "alltoall", "bottom_mlp", "interaction", "top_mlp"
        }
        assert estimate.time == pytest.approx(sum(estimate.breakdown.values()))

    def test_table_wise_sharding_counts(self, a100):
        sharded = TorchRecShardedDlrm(RM2_CONFIG, a100, num_devices=8)
        assert sharded.local_tables == RM2_CONFIG.num_tables // 8 + (
            1 if RM2_CONFIG.num_tables % 8 else 0
        )

    def test_scaling_beats_single_device(self, a100):
        """The point of TorchRec: a node outpaces one GPU."""
        single = DlrmCostModel(RM2_CONFIG, a100).forward(8192)
        sharded = TorchRecShardedDlrm(RM2_CONFIG, a100, num_devices=8).forward(8192)
        assert sharded.requests_per_second > 2 * single.requests_per_second

    def test_throughput_scales_with_devices(self, a100):
        two = TorchRecShardedDlrm(RM2_CONFIG, a100, num_devices=2).forward(8192)
        eight = TorchRecShardedDlrm(RM2_CONFIG, a100, num_devices=8).forward(8192)
        assert eight.requests_per_second > two.requests_per_second

    def test_node_energy_counts_all_devices(self, a100):
        estimate = TorchRecShardedDlrm(RM2_CONFIG, a100, num_devices=4).forward(4096)
        assert estimate.node_energy_joules == pytest.approx(
            4 * estimate.average_power_per_device * estimate.time
        )

    def test_invalid_inputs(self, a100):
        with pytest.raises(ValueError):
            TorchRecShardedDlrm(RM2_CONFIG, a100, num_devices=1)
        sharded = TorchRecShardedDlrm(RM2_CONFIG, a100, num_devices=4)
        with pytest.raises(ValueError):
            sharded.forward(global_batch=2)
