"""PagedAttention implementations (Section 4.2, Figures 16, 17)."""

import math

import numpy as np
import pytest

from repro.kernels.paged_attention import (
    PagedAttentionConfig,
    a100_paged_attention,
    reference_paged_attention,
    vllm_base_paged_attention,
    vllm_opt_paged_attention,
)
from repro.kernels.softmax import softmax


class TestConfig:
    def test_uniform_builder(self):
        config = PagedAttentionConfig.uniform(4, 1024)
        assert config.batch == 4
        assert config.padding_fraction == 0.0

    def test_padding_fraction(self):
        config = PagedAttentionConfig(
            batch=2, seq_lens=[1024, 128], q_heads=32, kv_heads=8, head_dim=128,
            block_size=128,
        )
        # max blocks 8 -> table 16 entries; effectual 8 + 1 = 9.
        assert config.padded_blocks == 16
        assert config.effectual_blocks == 9
        assert config.padding_fraction == pytest.approx(7 / 16)

    def test_block_bytes(self):
        config = PagedAttentionConfig.uniform(1, 128)
        assert config.block_bytes == 2 * 8 * 128 * 128 * 2

    def test_mismatched_seq_lens_rejected(self):
        with pytest.raises(ValueError):
            PagedAttentionConfig(batch=2, seq_lens=[128], q_heads=8, kv_heads=8,
                                 head_dim=64)


class TestBaselineVsOptimized:
    def test_opt_beats_base_everywhere(self):
        for seq in (1024, 4096):
            for batch in (8, 32):
                config = PagedAttentionConfig.uniform(batch, seq)
                assert (
                    vllm_opt_paged_attention(config).time
                    < vllm_base_paged_attention(config).time
                )

    def test_mean_speedup_matches_paper_band(self):
        """Paper: 7.4x average at 0 % padding."""
        ratios = []
        for seq in (1024, 2048, 4096, 8192):
            for batch in (8, 16, 32, 64):
                config = PagedAttentionConfig.uniform(batch, seq)
                ratios.append(
                    vllm_base_paged_attention(config).time
                    / vllm_opt_paged_attention(config).time
                )
        mean = sum(ratios) / len(ratios)
        assert 4.0 < mean < 9.0

    def test_padding_amplifies_speedup(self):
        """Figure 17(b): redundant gathers scale the gap up to ~55x."""
        base_lens = [4096] * 32
        padded_lens = [4096] + [256] * 31
        uniform = PagedAttentionConfig(batch=32, seq_lens=base_lens,
                                       q_heads=32, kv_heads=8, head_dim=128)
        padded = PagedAttentionConfig(batch=32, seq_lens=padded_lens,
                                      q_heads=32, kv_heads=8, head_dim=128)
        r_uniform = (vllm_base_paged_attention(uniform).time
                     / vllm_opt_paged_attention(uniform).time)
        r_padded = (vllm_base_paged_attention(padded).time
                    / vllm_opt_paged_attention(padded).time)
        assert r_padded > 4 * r_uniform
        assert 20 < r_padded < 70

    def test_base_time_insensitive_to_padding(self):
        """The baseline gathers the padded table either way."""
        uniform = PagedAttentionConfig.uniform(8, 2048)
        padded = PagedAttentionConfig(batch=8, seq_lens=[2048] + [128] * 7,
                                      q_heads=32, kv_heads=8, head_dim=128)
        tu = vllm_base_paged_attention(uniform).time
        tp = vllm_base_paged_attention(padded).time
        assert tp == pytest.approx(tu, rel=0.05)

    def test_opt_is_pipelined_base_is_not(self):
        config = PagedAttentionConfig.uniform(8, 2048)
        assert vllm_opt_paged_attention(config).pipelined
        assert not vllm_base_paged_attention(config).pipelined


class TestVsA100:
    def test_opt_at_roughly_half_of_a100(self):
        """Paper: vLLM_opt reaches ~45 % of the CUDA kernel."""
        ratios = []
        for seq in (2048, 4096):
            for batch in (16, 64):
                config = PagedAttentionConfig.uniform(batch, seq)
                ratios.append(
                    a100_paged_attention(config).time
                    / vllm_opt_paged_attention(config).time
                )
        mean = sum(ratios) / len(ratios)
        assert 0.35 < mean < 0.65

    def test_a100_single_pass_over_kv(self):
        config = PagedAttentionConfig.uniform(16, 4096)
        result = a100_paged_attention(config)
        # time is close to one KV read at the paged efficiency
        expected = config.kv_bytes / (2.0e12 * 0.80)
        assert result.time == pytest.approx(expected, rel=0.1)


class TestFunctional:
    def test_matches_dense_attention(self):
        rng = np.random.default_rng(0)
        batch, heads, dim, block, seq = 2, 3, 8, 4, 12
        nblocks = math.ceil(seq / block)
        query = rng.normal(size=(batch, heads, dim))
        kv_blocks = rng.normal(size=(batch * nblocks, 2, block, dim))
        block_table = np.arange(batch * nblocks).reshape(batch, nblocks)
        out = reference_paged_attention(query, kv_blocks, block_table,
                                        [seq] * batch, block)
        # dense reference
        for b in range(batch):
            keys = kv_blocks[block_table[b], 0].reshape(-1, dim)[:seq]
            values = kv_blocks[block_table[b], 1].reshape(-1, dim)[:seq]
            for h in range(heads):
                weights = softmax(keys @ query[b, h] / np.sqrt(dim))
                np.testing.assert_allclose(out[b, h], weights @ values, rtol=1e-9)

    def test_respects_seq_lens(self):
        rng = np.random.default_rng(1)
        query = rng.normal(size=(1, 1, 4))
        kv_blocks = rng.normal(size=(4, 2, 4, 4))
        table = np.array([[0, 1, 2, 3]])
        short = reference_paged_attention(query, kv_blocks, table, [4], 4)
        long = reference_paged_attention(query, kv_blocks, table, [16], 4)
        assert not np.allclose(short, long)
