"""Functional interpreter: the timed instruction stream computes real
results."""

import numpy as np
import pytest

from repro.hw.spec import DType
from repro.kernels.stream import StreamOp, reference_result, run_stream
from repro.tpc import TpcInterpreter, TpcKernelBuilder
from repro.tpc.interpreter import InterpreterError
from repro.tpc.isa import Opcode

_N = 1024  # elements; multiple of the 128-lane bf16 vector


def _build(op: StreamOp, unroll: int = 1):
    def body(b):
        if op is StreamOp.SCALE:
            x = b.load_tensor("a")
            b.store_tensor("b", b.vec(Opcode.MUL, x))
        elif op is StreamOp.ADD:
            x = b.load_tensor("a")
            y = b.load_tensor("b")
            b.store_tensor("c", b.vec(Opcode.ADD, x, y))
        else:
            x = b.load_tensor("a")
            y = b.load_tensor("b")
            b.store_tensor("c", b.vec_into(Opcode.MAC, y, x))

    return TpcKernelBuilder(op.value, dtype=DType.BF16).build_loop(
        body, iterations=_N // 128, unroll=unroll
    )


class TestStreamSemantics:
    """The exact scheduled instruction streams compute STREAM's answers."""

    @pytest.mark.parametrize("unroll", [1, 2, 4])
    def test_add(self, unroll):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=_N), rng.normal(size=_N)
        out = TpcInterpreter(_build(StreamOp.ADD, unroll), {"a": a, "b": b}).run()
        np.testing.assert_allclose(out["c"], a + b)

    @pytest.mark.parametrize("unroll", [1, 4])
    def test_scale(self, unroll):
        rng = np.random.default_rng(1)
        a = rng.normal(size=_N)
        out = TpcInterpreter(
            _build(StreamOp.SCALE, unroll), {"a": a}, scalars={"scale": 3.0}
        ).run()
        np.testing.assert_allclose(out["b"], 3.0 * a)

    @pytest.mark.parametrize("unroll", [1, 2, 4])
    def test_triad(self, unroll):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=_N), rng.normal(size=_N)
        out = TpcInterpreter(
            _build(StreamOp.TRIAD, unroll), {"a": a, "b": b}, scalars={"scale": 3.0}
        ).run()
        np.testing.assert_allclose(
            out["c"], reference_result(StreamOp.TRIAD, a, b, scalar=3.0)
        )

    def test_matches_kernel_library_emission(self, gaudi):
        """The kernels timed in Figure 8 execute correctly too."""
        result = run_stream(gaudi, StreamOp.TRIAD, _N, num_cores=1, unroll=2)
        assert result.achieved_gflops > 0  # built + timed
        kernel = _build(StreamOp.TRIAD, unroll=2)
        rng = np.random.default_rng(3)
        a, b = rng.normal(size=_N), rng.normal(size=_N)
        out = TpcInterpreter(kernel, {"a": a, "b": b}, scalars={"scale": 3.0}).run()
        np.testing.assert_allclose(out["c"], 3.0 * a + b)


class TestEdgeCases:
    def test_partial_final_vector_zero_padded_then_trimmed(self):
        n = 200  # not a multiple of 128
        def body(b):
            x = b.load_tensor("a")
            b.store_tensor("b", b.vec(Opcode.MUL, x))

        kernel = TpcKernelBuilder("scale").build_loop(body, iterations=2)
        a = np.arange(float(n))
        out = TpcInterpreter(kernel, {"a": a}, scalars={"scale": 2.0}).run(trim_to=n)
        np.testing.assert_allclose(out["b"], 2.0 * a)

    def test_chained_ops(self):
        def body(b):
            x = b.load_tensor("a")
            doubled = b.vec(Opcode.MUL, x)
            clipped = b.vec(Opcode.MAX, doubled, x)
            b.store_tensor("out", clipped)

        kernel = TpcKernelBuilder("chain").build_loop(body, iterations=8)
        a = np.random.default_rng(4).normal(size=1024)
        out = TpcInterpreter(kernel, {"a": a}, scalars={"scale": 2.0}).run()
        np.testing.assert_allclose(out["out"], np.maximum(2 * a, a))

    def test_gather_staging(self):
        def body(b):
            for _ in range(4):
                b.gather("table", access_bytes=256)

        kernel = TpcKernelBuilder("gather").build_loop(body, iterations=2)
        table = np.arange(24.0).reshape(6, 4)
        indices = [5, 0, 3, 3, 1, 2, 4, 0]
        interp = TpcInterpreter(
            kernel, {}, gather_indices=indices, gather_table=table
        )
        interp.run()
        rows = interp.pop_gathered()
        np.testing.assert_allclose(rows[0], table[5])
        assert len(rows) == 8

    def test_unbound_input_raises(self):
        kernel = _build(StreamOp.ADD)
        with pytest.raises(InterpreterError, match="not bound"):
            TpcInterpreter(kernel, {"a": np.ones(128)}).run()

    def test_gather_without_table_raises(self):
        def body(b):
            b.gather("t", access_bytes=256)

        kernel = TpcKernelBuilder("g").build_loop(body, iterations=1)
        with pytest.raises(InterpreterError, match="gather table"):
            TpcInterpreter(kernel, {}).run()

    def test_undefined_register_raises(self):
        from repro.tpc.isa import Instruction
        from repro.tpc.kernel import TpcKernel

        body = [Instruction(Opcode.ADD, dest="r", sources=("ghost",))]
        kernel = TpcKernel(name="bad", body=body, trips=1)
        with pytest.raises(InterpreterError, match="undefined"):
            TpcInterpreter(kernel, {}).run()
