"""HCCL / NCCL library facades (Figure 10 headline behaviours)."""

import pytest

from repro.comm import CollectiveOp, HcclLibrary, NcclLibrary

_SIZE = 32 << 20


@pytest.fixture(scope="module")
def hccl():
    return HcclLibrary()


@pytest.fixture(scope="module")
def nccl():
    return NcclLibrary()


class TestHeadlines:
    def test_gaudi_wins_5_of_6_at_8_devices(self, hccl, nccl):
        """Paper: Gaudi-2 shows higher busBW in 5 of the 6 collectives."""
        wins = sum(
            hccl.run(op, _SIZE, 8).bus_bandwidth > nccl.run(op, _SIZE, 8).bus_bandwidth
            for op in CollectiveOp
        )
        assert wins == 5

    def test_gaudi_declines_linearly_with_fewer_devices(self, hccl):
        busbw = [hccl.all_reduce(_SIZE, n).bus_bandwidth for n in (2, 4, 8)]
        assert busbw[0] < busbw[1] < busbw[2]
        # roughly proportional to (n - 1)
        assert busbw[2] / busbw[0] == pytest.approx(7.0, rel=0.15)

    def test_a100_stable_regardless_of_devices(self, nccl):
        busbw = [nccl.all_reduce(_SIZE, n).bus_bandwidth for n in (2, 4, 8)]
        assert max(busbw) / min(busbw) < 1.2

    def test_a100_dominates_at_two_devices(self, hccl, nccl):
        for op in CollectiveOp:
            assert (
                nccl.run(op, _SIZE, 2).bus_bandwidth
                > 3 * hccl.run(op, _SIZE, 2).bus_bandwidth
            )


class TestSizeSweep:
    def test_small_messages_poor_utilization(self, hccl, nccl):
        for library in (hccl, nccl):
            small = library.all_reduce(2048, 8)
            large = library.all_reduce(_SIZE, 8)
            assert small.bus_utilization < 0.1 * large.bus_utilization

    def test_utilization_monotone_in_size(self, hccl):
        utils = [hccl.all_reduce(2 ** p, 8).bus_utilization for p in range(11, 26, 2)]
        assert utils == sorted(utils)


class TestWrappers:
    @pytest.mark.parametrize(
        "method,op",
        [
            ("all_reduce", CollectiveOp.ALL_REDUCE),
            ("all_gather", CollectiveOp.ALL_GATHER),
            ("reduce_scatter", CollectiveOp.REDUCE_SCATTER),
            ("all_to_all", CollectiveOp.ALL_TO_ALL),
            ("reduce", CollectiveOp.REDUCE),
            ("broadcast", CollectiveOp.BROADCAST),
        ],
    )
    def test_wrapper_matches_run(self, hccl, method, op):
        via_wrapper = getattr(hccl, method)(_SIZE, 4)
        via_run = hccl.run(op, _SIZE, 4)
        assert via_wrapper.time == via_run.time
        assert via_wrapper.op is op

    def test_report_fields_consistent(self, nccl):
        report = nccl.all_gather(_SIZE, 8)
        assert report.bus_bandwidth == pytest.approx(
            report.algorithm_bandwidth * 7 / 8
        )
        assert report.bus_utilization == pytest.approx(report.bus_bandwidth / 300e9)
