"""Redesigned run API: RunContext, positional shims, Report protocol."""

import json

import pytest

from repro.api import Report, RunContext, positional_shim, render_report, rows_to_csv
from repro.hw.spec import DType
from repro.hw.device import Gaudi2Device
from repro.kernels.gather_scatter import run_gather_scatter
from repro.kernels.gemm import run_gemm
from repro.kernels.stream import StreamOp, run_stream
from repro.models.llama import LLAMA_3_1_8B, LlamaCostModel
from repro.serving import LlmServingEngine, fixed_length_requests


class TestRunContext:
    def test_create_binds_tracer_and_metrics(self):
        ctx = RunContext.create(seed=7, device="gaudi2")
        assert ctx.tracer and ctx.metrics is not None
        assert ctx.seed == 7

    def test_create_can_disable_instruments(self):
        ctx = RunContext.create(trace=False, metrics=False)
        assert ctx.tracer is None and ctx.metrics is None

    def test_resolve_seed_explicit_wins(self):
        ctx = RunContext.create(seed=5)
        assert ctx.resolve_seed(9) == 9
        assert ctx.resolve_seed(None) == 5

    def test_resolve_device_explicit_wins(self, gaudi, a100):
        ctx = RunContext.create(device="gaudi2")
        assert ctx.resolve_device(a100) is a100
        assert ctx.resolve_device(None).name == "Gaudi-2"

    def test_resolve_device_without_default_rejected(self):
        ctx = RunContext.create()
        with pytest.raises(ValueError, match="no default"):
            ctx.resolve_device(None)

    def test_exports_require_bound_instruments(self):
        ctx = RunContext.create(trace=False, metrics=False)
        with pytest.raises(ValueError):
            ctx.chrome_trace()
        with pytest.raises(ValueError):
            ctx.metrics_summary()


class TestPositionalShim:
    def test_maps_positionals_and_warns(self):
        @positional_shim("a", "b")
        def fn(*, a, b=2):
            """Test fixture."""
            return (a, b)

        with pytest.warns(DeprecationWarning, match="deprecated"):
            assert fn(1, 9) == (1, 9)

    def test_keyword_calls_stay_silent(self, recwarn):
        @positional_shim("a")
        def fn(*, a):
            """Test fixture."""
            return a

        assert fn(a=3) == 3
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_excess_positionals_rejected(self):
        @positional_shim("a")
        def fn(*, a):
            """Test fixture."""
            return a

        with pytest.raises(TypeError, match="positional"):
            fn(1, 2)

    def test_duplicate_argument_rejected(self):
        @positional_shim("a")
        def fn(*, a):
            """Test fixture."""
            return a

        with pytest.raises(TypeError, match="'a'"):
            with pytest.warns(DeprecationWarning):
                fn(1, a=2)


class TestMigratedEntryPoints:
    """Every migrated run_* accepts ctx= and still honours old positionals."""

    def test_run_gemm_positional_warns(self, gaudi):
        with pytest.warns(DeprecationWarning):
            legacy = run_gemm(gaudi, 128, 128, 128)
        modern = run_gemm(device=gaudi, m=128, k=128, n=128)
        assert legacy.time == modern.time

    def test_run_gemm_uses_ctx_device_and_records(self):
        ctx = RunContext.create(device="gaudi2")
        point = run_gemm(m=64, k=64, n=64, dtype=DType.BF16, ctx=ctx)
        assert point.time > 0
        assert [s.name for s in ctx.tracer.spans] == ["gemm"]
        assert ctx.metrics.counter("kernels.gemm.calls").value == 1

    def test_run_gemm_without_device_anywhere_rejected(self):
        with pytest.raises(TypeError, match="device"):
            run_gemm(m=64, k=64, n=64)

    def test_run_stream_positional_warns(self, gaudi):
        with pytest.warns(DeprecationWarning):
            legacy = run_stream(gaudi, StreamOp.ADD)
        modern = run_stream(device=gaudi, op=StreamOp.ADD)
        assert legacy.time == modern.time

    def test_run_stream_records_kernel_span(self):
        ctx = RunContext.create(device="gaudi2")
        run_stream(op=StreamOp.TRIAD, ctx=ctx)
        assert ctx.tracer.spans[0].name == "stream.triad"
        assert ctx.tracer.spans[0].category == "kernel"

    def test_run_gather_scatter_both_forms(self, gaudi):
        with pytest.warns(DeprecationWarning):
            legacy = run_gather_scatter(gaudi, 1024)
        ctx = RunContext.create(device="gaudi2")
        modern = run_gather_scatter(vector_bytes=1024, ctx=ctx)
        assert legacy.time == modern.time
        assert ctx.tracer.spans[0].name == "gather"

    def test_run_load_test_accepts_ctx(self, gaudi):
        from repro.serving.loadgen import run_load_test

        ctx = RunContext.create(seed=3)
        report = run_load_test(
            engine_factory=lambda: LlmServingEngine(
                LlamaCostModel(LLAMA_3_1_8B, gaudi), max_decode_batch=8
            ),
            request_factory=lambda: fixed_length_requests(4, 64, 8),
            offered_rate=50.0,
            ctx=ctx,
        )
        assert report.achieved_rate > 0
        assert ctx.tracer.open_spans == 0
        assert ctx.metrics.counter("engine.steps").value > 0

    def test_run_figure_positional_warns(self):
        from repro.figures import run_figure

        with pytest.warns(DeprecationWarning):
            legacy = run_figure("fig04", True)
        ctx = RunContext.create(trace=False)
        modern = run_figure(figure_id="fig04", fast=True, ctx=ctx)
        assert legacy.figure_id == modern.figure_id
        assert ctx.metrics.counter("figures.runs").value == 1

    def test_run_chaos_keyword_form(self):
        from repro.faults.chaos import ChaosConfig, run_chaos

        config = ChaosConfig(tp=1, num_requests=4, max_decode_batch=4)
        ctx = RunContext.create(seed=0)
        report = run_chaos(config=config, ctx=ctx)
        assert report.num_requests == 4
        assert ctx.tracer.open_spans == 0


class TestReportProtocol:
    def _serving_report(self, gaudi):
        engine = LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, gaudi), max_decode_batch=8
        )
        return engine.run(fixed_length_requests(4, 64, 8))

    def test_reports_satisfy_protocol(self, gaudi):
        from repro.core.experiment import ExperimentResult
        from repro.faults.chaos import ChaosConfig, run_chaos
        from repro.graph import Engine, Graph, GraphCompiler
        from repro.tools import GaudiProfiler

        serving = self._serving_report(gaudi)
        resilience = run_chaos(config=ChaosConfig(tp=1, num_requests=4))
        experiment = ExperimentResult("exp")
        graph = Graph("g")
        graph.add_op("gemm", Engine.MME, 10e-6, 1e3, 1e3)
        profile = GaudiProfiler().profile(GraphCompiler().compile(graph))
        for report in (serving, resilience, experiment, profile):
            assert isinstance(report, Report), type(report).__name__

    def test_serving_report_formats(self, gaudi):
        report = self._serving_report(gaudi)
        rendered = report.render()
        assert "Serving report" in rendered and "Gaudi-2" in rendered
        payload = json.loads(report.to_json())
        assert payload["num_requests"] == 4
        header = report.to_csv().splitlines()[0]
        assert "num_requests" in header

    def test_render_report_dispatch(self, gaudi):
        report = self._serving_report(gaudi)
        assert render_report(report, "text") == report.render()
        assert render_report(report, "json") == report.to_json()
        assert render_report(report, "csv") == report.to_csv()

    def test_render_report_rejects_non_reports(self):
        with pytest.raises(TypeError):
            render_report(object(), "text")

    def test_render_report_rejects_unknown_format(self, gaudi):
        with pytest.raises(ValueError, match="format"):
            render_report(self._serving_report(gaudi), "yaml")

    def test_rows_to_csv_unions_fieldnames(self):
        text = rows_to_csv([{"a": 1}, {"b": 2}])
        assert text.splitlines()[0] == "a,b"
        with pytest.raises(ValueError, match="no rows"):
            rows_to_csv([])
