"""H100 (Hopper) tile-GEMM backend."""

import math

import pytest

from repro.hw.device import A100Device
from repro.hw.hopper import (
    DEFAULT_TILE_SHAPES,
    H100Device,
    H100_SPEC,
    TILE_PIPELINE_EFFICIENCY,
    TileGemmModel,
)
from repro.hw.spec import DType, TERA, get_spec


class TestSpec:
    def test_table1_numbers(self):
        assert H100_SPEC.name == "H100"
        assert H100_SPEC.matrix.peak(DType.BF16) == pytest.approx(989.5 * TERA)
        assert H100_SPEC.memory.hbm_type == "HBM3"
        assert H100_SPEC.memory.bandwidth == pytest.approx(3.35 * TERA)
        assert H100_SPEC.power.tdp_watts == 700.0

    def test_registered_under_aliases(self):
        assert get_spec("h100") is H100_SPEC
        assert get_spec("hopper") is H100_SPEC

    def test_nvswitch_fabric(self):
        assert H100_SPEC.interconnect.kind == "switch"


class TestTileModel:
    def setup_method(self):
        self.model = TileGemmModel()

    def test_large_square_near_peak(self):
        est = self.model.gemm(8192, 8192, 8192)
        # Compute-bound; pipeline efficiency is the ceiling.
        assert not est.memory_bound
        assert 0.88 <= est.utilization <= TILE_PIPELINE_EFFICIENCY + 1e-9

    def test_selects_registered_tile(self):
        est = self.model.gemm(4096, 4096, 4096)
        assert est.tile in DEFAULT_TILE_SHAPES

    def test_streamk_softens_wave_quantization(self):
        """A grid one tile past a full wave costs a fractional wave,
        not a whole one (stream-K tail splitting)."""
        tile = self.model.select_tile(4096, 4096, 4096)
        tm, _ = tile
        sm = self.model.sm_count
        # One column of tiles per SM, then one extra row of tiles.
        full = self.model._grid_cycles(tile, sm, 4096)
        tail = self.model._grid_cycles(tile, sm + 1, 4096)
        two = self.model._grid_cycles(tile, 2 * sm, 4096)
        assert full < tail < two
        assert (tail - full) < 0.5 * (two - full)

    def test_fractional_waves_reported(self):
        est = self.model.gemm(512, 512, 512)
        tm, tn = est.tile
        tiles = math.ceil(512 / tm) * math.ceil(512 / tn)
        assert est.waves == pytest.approx(
            tiles // self.model.sm_count
            + (tiles % self.model.sm_count) / self.model.sm_count
        )

    def test_skinny_gemm_memory_bound(self):
        est = self.model.gemm(8192, 8192, 16)
        assert est.memory_bound

    def test_batched_extends_grid(self):
        single = self.model.gemm(1024, 1024, 1024)
        batched = self.model.batched_gemm(4, 1024, 1024, 1024)
        assert batched.time > single.time
        assert batched.time <= 4 * single.time * (1 + 1e-9)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            self.model.gemm(0, 128, 128)
        with pytest.raises(ValueError):
            self.model.batched_gemm(0, 128, 128, 128)


class TestH100Device:
    def setup_method(self):
        self.h100 = H100Device()
        self.a100 = A100Device()

    def test_capabilities(self):
        assert self.h100.family == "cuda"
        assert self.h100.decode_attention == "paged-cuda"
        assert self.h100.smi_style == "nvidia-smi"
        assert self.h100.attention_efficiency > self.a100.attention_efficiency

    def test_config_label_names_tile_and_waves(self):
        label = self.h100.gemm(4096, 4096, 4096).config_label
        assert label.startswith("Tile ")
        assert "TMA" in label and "waves" in label

    def test_beats_a100_on_large_gemm(self):
        """Generational headroom: ~3.2x peak shows up as >2x achieved."""
        h = self.h100.gemm(8192, 8192, 8192)
        a = self.a100.gemm(8192, 8192, 8192)
        assert h.achieved_flops > 2.0 * a.achieved_flops

    def test_holds_utilization_on_awkward_shape(self):
        """Stream-K + tile-shape choice keeps utilization above the
        A100's wave-quantized result on a deliberately awkward shape."""
        m = n = 132 * 64 + 64  # one tile past a full wave for 64x64
        h = self.h100.gemm(m, 4096, n)
        a = self.a100.gemm(m, 4096, n)
        assert h.utilization > a.utilization

    def test_nccl_fabric(self):
        from repro.comm.api import NcclLibrary

        assert isinstance(self.h100.collective_library(), NcclLibrary)
