"""A100 CUDA kernel analog."""

import pytest

from repro.cuda import CudaLauncher
from repro.hw.spec import A100_SPEC


@pytest.fixture(scope="module")
def launcher():
    return CudaLauncher()


class TestStream:
    def test_memory_bound_at_low_intensity(self, launcher):
        result = launcher.launch_stream("add", 10**7, 1.0, 6.0)
        assert result.bottleneck == "hbm-bandwidth"

    def test_compute_bound_at_high_intensity(self, launcher):
        result = launcher.launch_stream("addN", 10**7, 512.0, 6.0)
        assert result.bottleneck == "simd-compute"

    def test_fma_doubles_compute_ceiling(self, launcher):
        add = launcher.launch_stream("add", 10**7, 256.0, 6.0, uses_fma=False)
        mac = launcher.launch_stream("triad", 10**7, 256.0, 6.0, uses_fma=True)
        assert mac.achieved_flops == pytest.approx(2 * add.achieved_flops, rel=0.01)

    def test_triad_saturation_matches_paper(self, launcher):
        """Paper: A100 TRIAD saturates around 38.2 TFLOPS (98 % of 39)."""
        result = launcher.launch_stream("triad", 10**7, 1024.0, 6.0, uses_fma=True)
        assert result.achieved_flops / 1e12 == pytest.approx(39.0, rel=0.03)

    def test_few_sms_limit_bandwidth(self, launcher):
        few = launcher.launch_stream("add", 10**7, 1.0, 6.0, num_sms=4)
        many = launcher.launch_stream("add", 10**7, 1.0, 6.0, num_sms=108)
        assert few.time > many.time

    def test_invalid_elements_raise(self, launcher):
        with pytest.raises(ValueError):
            launcher.launch_stream("x", 0, 1.0, 6.0)


class TestGather:
    def test_full_occupancy_gather_near_random_ceiling(self, launcher):
        result = launcher.launch_gather("g", 10**6, 256, parallel_accesses=10**6)
        ceiling = A100_SPEC.memory.bandwidth * A100_SPEC.memory.random_efficiency
        busy = result.time - result.launch_overhead
        assert result.useful_bytes / busy == pytest.approx(ceiling, rel=0.05)

    def test_small_launch_underutilizes(self, launcher):
        small = launcher.launch_gather("g", 1024, 256, parallel_accesses=1024)
        big = launcher.launch_gather("g", 1024, 256, parallel_accesses=10**6)
        assert small.time > big.time

    def test_l2_resident_working_set(self, launcher):
        hot = launcher.launch_gather("g", 10**5, 256, working_set_bytes=8 << 20,
                                     parallel_accesses=10**6)
        cold = launcher.launch_gather("g", 10**5, 256, working_set_bytes=1 << 31,
                                      parallel_accesses=10**6)
        assert hot.time < cold.time

    def test_invalid_args_raise(self, launcher):
        with pytest.raises(ValueError):
            launcher.launch_gather("g", 0, 256)
        with pytest.raises(ValueError):
            launcher.launch_gather("g", 100, 0)
