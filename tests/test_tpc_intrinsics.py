"""Functional semantics of the TPC intrinsics."""

import numpy as np
import pytest

from repro.tpc import intrinsics


class TestArithmetic:
    def test_add(self):
        np.testing.assert_allclose(
            intrinsics.v_add(np.array([1.0, 2.0]), np.array([3.0, 4.0])),
            [4.0, 6.0],
        )

    def test_mul(self):
        np.testing.assert_allclose(
            intrinsics.v_mul(np.array([2.0, 3.0]), np.float32(3.0)), [6.0, 9.0]
        )

    def test_mac_is_fused_multiply_accumulate(self):
        acc = np.array([1.0, 1.0])
        out = intrinsics.v_mac(acc, np.array([2.0, 3.0]), np.array([4.0, 5.0]))
        np.testing.assert_allclose(out, [9.0, 16.0])

    def test_max_min(self):
        a, b = np.array([1.0, 5.0]), np.array([3.0, 2.0])
        np.testing.assert_allclose(intrinsics.v_max(a, b), [3.0, 5.0])
        np.testing.assert_allclose(intrinsics.v_min(a, b), [1.0, 2.0])

    def test_exp_recip(self):
        np.testing.assert_allclose(intrinsics.v_exp(np.array([0.0])), [1.0])
        np.testing.assert_allclose(intrinsics.v_recip(np.array([4.0])), [0.25])


class TestBf16:
    def test_bf16_truncates_mantissa(self):
        value = np.array([1.0 + 2**-12], dtype=np.float32)
        truncated = intrinsics.as_bf16(value)
        assert truncated[0] == 1.0

    def test_bf16_preserves_representable_values(self):
        values = np.array([1.0, -2.0, 0.5, 256.0], dtype=np.float32)
        np.testing.assert_array_equal(intrinsics.as_bf16(values), values)

    def test_bf16_relative_error_bounded(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=1000).astype(np.float32)
        truncated = intrinsics.as_bf16(values)
        rel = np.abs(truncated - values) / np.maximum(np.abs(values), 1e-30)
        assert rel.max() < 2**-7


class TestGatherScatter:
    def test_gather_rows(self):
        table = np.arange(12.0).reshape(4, 3)
        out = intrinsics.v_gather(table, np.array([2, 0]))
        np.testing.assert_allclose(out, [[6, 7, 8], [0, 1, 2]])

    def test_gather_out_of_range_raises(self):
        with pytest.raises(IndexError):
            intrinsics.v_gather(np.zeros((4, 3)), np.array([4]))

    def test_scatter_last_write_wins(self):
        target = np.zeros((3, 2))
        out = intrinsics.v_scatter(target, np.array([1, 1]), np.array([[1.0, 1.0], [2.0, 2.0]]))
        np.testing.assert_allclose(out[1], [2.0, 2.0])

    def test_scatter_does_not_mutate_input(self):
        target = np.zeros((2, 2))
        intrinsics.v_scatter(target, np.array([0]), np.array([[5.0, 5.0]]))
        assert target.sum() == 0.0
