"""The perf-regression harness's comparison logic (no timing asserts:
wall-clock values are machine-dependent, so only structure and the
gating math are tested)."""

import json

import pytest

from repro import bench


def _result(cases, calibration=0.1, mode="fast"):
    return {
        "schema": bench.BENCH_SCHEMA,
        "mode": mode,
        "repeats": 1,
        "calibration_seconds": calibration,
        "cases": {
            name: {"seconds": seconds, "runs": [seconds], "description": name}
            for name, seconds in cases.items()
        },
    }


class TestCompareToBaseline:
    def test_within_tolerance_passes(self):
        ok, rows = bench.compare_to_baseline(
            _result({"a": 1.0}), _result({"a": 0.9}), tolerance=2.0
        )
        assert ok
        assert rows[0]["status"] == "ok"

    def test_regression_fails(self):
        ok, rows = bench.compare_to_baseline(
            _result({"a": 1.0}), _result({"a": 0.2}), tolerance=2.0
        )
        assert not ok
        assert rows[0]["status"] == "regressed"
        assert rows[0]["normalized_ratio"] == pytest.approx(5.0)

    def test_calibration_normalizes_slow_machines(self):
        # 3x slower wall-clock on a 3x slower host is not a regression.
        now = _result({"a": 3.0}, calibration=0.3)
        base = _result({"a": 1.0}, calibration=0.1)
        ok, rows = bench.compare_to_baseline(now, base, tolerance=1.5)
        assert ok
        assert rows[0]["normalized_ratio"] == pytest.approx(1.0)

    def test_tiny_baselines_report_but_never_gate(self):
        ok, rows = bench.compare_to_baseline(
            _result({"a": 1.0}), _result({"a": 0.001}), tolerance=2.0
        )
        assert ok
        assert rows[0]["status"] == "too-small"

    def test_new_and_missing_cases_never_gate(self):
        ok, rows = bench.compare_to_baseline(
            _result({"new_case": 1.0}), _result({"old_case": 1.0}), tolerance=2.0
        )
        assert ok
        statuses = {row["case"]: row["status"] for row in rows}
        assert statuses == {"new_case": "new", "old_case": "missing"}

    def test_mode_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bench.compare_to_baseline(
                _result({"a": 1.0}, mode="fast"),
                _result({"a": 1.0}, mode="full"),
            )

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            bench.compare_to_baseline(_result({}), _result({}), tolerance=0)


class TestResultDocuments:
    def test_write_and_load_roundtrip(self, tmp_path):
        result = _result({"a": 1.0})
        path = bench.write_result(result, str(tmp_path / "bench.json"))
        assert bench.load_baseline(str(path)) == result

    def test_default_name_is_stamped(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = bench.write_result(_result({}))
        assert path.name.startswith("BENCH_")
        assert path.name.endswith(".json")

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/v9"}))
        with pytest.raises(ValueError):
            bench.load_baseline(str(path))

    def test_committed_baseline_is_loadable(self):
        baseline = bench.load_baseline("benchmarks/perf/baseline.json")
        assert baseline["mode"] == "fast"
        assert set(baseline["cases"]) >= {
            "fig04_grid", "fig12_serving", "fig17_serving",
            "serve_256", "chaos_load",
        }

    def test_unknown_case_rejected(self):
        with pytest.raises(KeyError):
            bench.run_bench(cases=["not_a_case"])

    def test_run_bench_structure(self):
        result = bench.run_bench(fast=True, repeats=1, cases=["fig04_grid"])
        assert result["schema"] == bench.BENCH_SCHEMA
        assert result["mode"] == "fast"
        entry = result["cases"]["fig04_grid"]
        assert entry["seconds"] == min(entry["runs"])
        assert result["calibration_seconds"] > 0

    def test_render_result_mentions_every_case(self):
        result = _result({"alpha_case": 1.0, "beta_case": 2.0})
        text = bench.render_result(result)
        assert "alpha_case" in text and "beta_case" in text

    def test_render_comparison_mentions_status(self):
        _, rows = bench.compare_to_baseline(
            _result({"a": 1.0}), _result({"a": 0.2}), tolerance=2.0
        )
        text = bench.render_comparison(rows, 2.0)
        assert "regressed" in text
