"""Element-wise and softmax cost helpers + functional semantics."""

import numpy as np
import pytest

from repro.hw.spec import GAUDI2_SPEC
from repro.kernels.elementwise import (
    activation_cost,
    elementwise_cost,
    gelu,
    layernorm_cost,
    relu,
    rmsnorm,
    silu,
)
from repro.kernels.softmax import softmax, softmax_cost


class TestCosts:
    def test_bytes_accounting(self):
        cost = elementwise_cost(GAUDI2_SPEC, 1000, num_inputs=2)
        assert cost.input_bytes == 2 * 1000 * 2
        assert cost.output_bytes == 1000 * 2

    def test_compute_scales_with_flops(self):
        one = elementwise_cost(GAUDI2_SPEC, 1000, flops_per_element=1.0)
        four = elementwise_cost(GAUDI2_SPEC, 1000, flops_per_element=4.0)
        assert four.compute_time == pytest.approx(4 * one.compute_time)

    def test_activation_heavier_than_copy(self):
        act = activation_cost(GAUDI2_SPEC, 1000)
        copy = elementwise_cost(GAUDI2_SPEC, 1000, flops_per_element=1.0)
        assert act.compute_time > copy.compute_time

    def test_layernorm_and_softmax_positive(self):
        assert layernorm_cost(GAUDI2_SPEC, 1000).compute_time > 0
        assert softmax_cost(GAUDI2_SPEC, 1000).compute_time > 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            elementwise_cost(GAUDI2_SPEC, -1)
        with pytest.raises(ValueError):
            elementwise_cost(GAUDI2_SPEC, 10, num_inputs=0)


class TestFunctional:
    def test_relu(self):
        np.testing.assert_allclose(relu(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_silu_at_zero(self):
        assert silu(np.array([0.0]))[0] == 0.0

    def test_silu_approaches_identity(self):
        assert silu(np.array([20.0]))[0] == pytest.approx(20.0, rel=1e-6)

    def test_gelu_symmetric_ish(self):
        x = np.array([3.0])
        assert gelu(x)[0] == pytest.approx(3.0, abs=0.02)
        assert gelu(-x)[0] == pytest.approx(0.0, abs=0.02)

    def test_rmsnorm_unit_scale(self):
        x = np.array([[3.0, 4.0]])
        out = rmsnorm(x, np.ones(2))
        rms = np.sqrt((out**2).mean())
        assert rms == pytest.approx(1.0, rel=1e-3)

    def test_softmax_rows_sum_to_one(self):
        out = softmax(np.random.default_rng(0).normal(size=(4, 7)))
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), rtol=1e-12)

    def test_softmax_stable_for_large_inputs(self):
        out = softmax(np.array([1e4, 1e4 + 1.0]))
        assert np.isfinite(out).all()
        assert out[1] > out[0]
