"""Vectorized struct-of-arrays engine core vs the scalar reference.

The fast path must be *observationally invisible*: byte-identical
reports and identical per-request terminal state against the legacy
per-object loop, across backends, attention kernels, preemption, and
streaming arrival feeds.  Plus the slot-recycling safety property and
the constant-memory guarantee of release-mode streaming runs.
"""

import json
import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import ConfigError, audit_scope
from repro.models.llama import DecodeAttention, LLAMA_3_1_8B, LlamaCostModel
from repro.serving import (
    LlmServingEngine,
    ResiliencePolicy,
    dynamic_sonnet_requests,
    iter_dynamic_sonnet_requests,
)
from repro.serving.engine_core import (
    EngineCore,
    counters_snapshot,
    render_counters,
    reset_counters,
)
from repro.serving.loadgen import poisson_arrivals
from repro.serving.request import Request


def _engine(device, mode, attention=DecodeAttention.PAGED_OPT, **kwargs):
    return LlmServingEngine(
        LlamaCostModel(LLAMA_3_1_8B, device),
        attention,
        engine_mode=mode,
        **kwargs,
    )


def _states(requests):
    return [
        (r.request_id, r.state.value, r.generated, r.first_token_time,
         r.finish_time, r.restarts, r.retries)
        for r in requests
    ]


def _run_both(device, make_requests, attention=DecodeAttention.PAGED_OPT,
              **kwargs):
    """Run the same workload through both regimes; returns the two
    (report-json, states) pairs."""
    scalar_requests = make_requests()
    scalar = _engine(device, "scalar", attention, **kwargs).run(scalar_requests)
    fast_requests = make_requests()
    fast = _engine(device, "vectorized", attention, **kwargs).run(fast_requests)
    return (
        (scalar.to_json(), _states(scalar_requests)),
        (fast.to_json(), _states(fast_requests)),
    )


class TestGoldenEquivalence:
    """Scalar and vectorized runs must be byte-identical."""

    def test_backlog(self, gaudi):
        scalar, fast = _run_both(
            gaudi, lambda: dynamic_sonnet_requests(48, seed=7)
        )
        assert scalar == fast

    def test_poisson_arrivals(self, gaudi):
        scalar, fast = _run_both(
            gaudi,
            lambda: poisson_arrivals(
                dynamic_sonnet_requests(64, seed=1), 20.0, seed=5
            ),
        )
        assert scalar == fast

    def test_preemption_small_kv_pool(self, gaudi):
        scalar, fast = _run_both(
            gaudi,
            lambda: dynamic_sonnet_requests(32, seed=11),
            num_kv_blocks=220,
        )
        assert scalar == fast

    def test_single_token_outputs_finish_at_prefill(self, gaudi):
        def make():
            return [
                Request(r.request_id, r.input_tokens, 1, r.arrival_time)
                for r in dynamic_sonnet_requests(24, seed=9)
            ]

        scalar, fast = _run_both(gaudi, make)
        assert scalar == fast

    @pytest.mark.parametrize("attention", list(DecodeAttention))
    def test_every_attention_kernel(self, gaudi, attention):
        scalar, fast = _run_both(
            gaudi, lambda: dynamic_sonnet_requests(24, seed=2),
            attention=attention,
        )
        assert scalar == fast

    def test_other_backend(self, a100):
        scalar, fast = _run_both(
            a100, lambda: dynamic_sonnet_requests(32, seed=3),
            attention=DecodeAttention.PAGED_CUDA,
        )
        assert scalar == fast

    def test_under_strict_audit(self, gaudi):
        with audit_scope("strict"):
            scalar, fast = _run_both(
                gaudi,
                lambda: poisson_arrivals(
                    dynamic_sonnet_requests(40, seed=4), 15.0, seed=6
                ),
            )
        assert scalar == fast

    def test_auto_mode_picks_fast_path_when_eligible(self, gaudi):
        engine = _engine(gaudi, "auto")
        engine.begin(())
        assert engine._fast
        engine.finish()

    def test_auto_mode_falls_back_with_policy(self, gaudi):
        engine = _engine(gaudi, "auto", policy=ResiliencePolicy())
        engine.begin(())
        assert not engine._fast
        engine.finish()


class TestStreamingRuns:
    def test_stream_matches_list_vectorized(self, gaudi):
        def make():
            return poisson_arrivals(
                dynamic_sonnet_requests(64, seed=8), 25.0, seed=2
            )

        listed = _engine(gaudi, "vectorized").run(make()).to_json()
        streamed = _engine(gaudi, "vectorized").run(iter(make())).to_json()
        assert listed == streamed

    def test_stream_matches_list_scalar(self, gaudi):
        def make():
            return poisson_arrivals(
                dynamic_sonnet_requests(48, seed=8), 25.0, seed=2
            )

        listed = _engine(gaudi, "scalar").run(make()).to_json()
        streamed = _engine(gaudi, "scalar").run(iter(make())).to_json()
        assert listed == streamed

    def test_unsorted_arrivals_rejected(self, gaudi):
        requests = dynamic_sonnet_requests(3, seed=0)
        requests[0].arrival_time = 5.0
        requests[1].arrival_time = 1.0
        with pytest.raises(ConfigError, match="nondecreasing"):
            _engine(gaudi, "vectorized").run(iter(requests))

    def test_lazy_dataset_prefix_stable(self):
        from itertools import islice

        a = list(iter_dynamic_sonnet_requests(100, seed=3))
        b = list(islice(iter_dynamic_sonnet_requests(10**9, seed=3), 100))
        assert [(r.input_tokens, r.output_tokens) for r in a] == [
            (r.input_tokens, r.output_tokens) for r in b
        ]
        # Laziness: taking 100 of a billion-request trace must not
        # materialize the trace (the islice above would never return).


class TestReleaseMode:
    """``retain_requests=False`` folds terminals into aggregates."""

    def test_counts_exact_and_latencies_close(self, gaudi):
        def make():
            return poisson_arrivals(
                dynamic_sonnet_requests(96, seed=5), 20.0, seed=7
            )

        retained = json.loads(_engine(gaudi, "vectorized").run(make()).to_json())
        released = json.loads(
            _engine(gaudi, "vectorized", retain_requests=False)
            .run(iter(make())).to_json()
        )
        for key in ("num_requests", "finished_requests", "total_output_tokens",
                    "engine_steps", "preemptions", "shed_requests",
                    "failed_requests"):
            assert retained[key] == released[key], key
        # Retirement-order folding may differ from feed-order sums in
        # the last ulp (documented in ReportAggregates).
        assert released["mean_ttft"] == pytest.approx(
            retained["mean_ttft"], rel=1e-9
        )
        assert released["mean_tpot"] == pytest.approx(
            retained["mean_tpot"], rel=1e-9
        )

    def test_retained_requests_empty_in_release_mode(self, gaudi):
        engine = _engine(gaudi, "vectorized", retain_requests=False)
        engine.run(iter(dynamic_sonnet_requests(16, seed=1)))
        assert engine.retained_requests == []


class TestEngineModeConfig:
    def test_unknown_mode_rejected(self, gaudi):
        with pytest.raises(ConfigError, match="engine_mode"):
            _engine(gaudi, "turbo")

    def test_explicit_vectorized_with_policy_rejected(self, gaudi):
        engine = _engine(gaudi, "vectorized", policy=ResiliencePolicy())
        with pytest.raises(ConfigError, match="vectorized"):
            engine.begin(())

    def test_env_forces_scalar(self, gaudi, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "scalar")
        engine = _engine(gaudi, "auto")
        engine.begin(())
        assert not engine._fast
        engine.finish()

    def test_bad_env_value_rejected(self, gaudi, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp")
        with pytest.raises(ConfigError, match="REPRO_ENGINE"):
            _engine(gaudi, "auto").begin(())


class TestLifecycleOperations:
    def test_fail_all_matches_scalar(self, gaudi):
        results = {}
        for mode in ("scalar", "vectorized"):
            requests = poisson_arrivals(
                dynamic_sonnet_requests(24, seed=6), 40.0, seed=1
            )
            engine = _engine(gaudi, mode)
            engine.begin(requests)
            engine.advance(0.5)
            victims = engine.fail_all("outage: test")
            results[mode] = (
                sorted(v.request_id for v in victims), _states(requests)
            )
        assert results["scalar"] == results["vectorized"]

    def test_cancel_matches_scalar(self, gaudi):
        results = {}
        for mode in ("scalar", "vectorized"):
            requests = poisson_arrivals(
                dynamic_sonnet_requests(16, seed=6), 40.0, seed=1
            )
            engine = _engine(gaudi, mode)
            engine.begin(requests)
            engine.advance(0.4)
            alive = [r for r in requests if not r.done]
            engine.cancel(alive[-1], "timeout: test")
            engine.advance()
            results[mode] = _states(requests)
        assert results["scalar"] == results["vectorized"]


class TestCounters:
    def test_run_counters(self, gaudi):
        reset_counters()
        _engine(gaudi, "vectorized").run(dynamic_sonnet_requests(8, seed=0))
        _engine(gaudi, "scalar").run(dynamic_sonnet_requests(8, seed=0))
        counters = counters_snapshot()
        assert counters["vectorized_runs"] == 1
        assert counters["scalar_runs"] == 1
        assert counters["vectorized_steps"] > 0
        assert counters["scalar_steps"] > 0
        assert counters["slot_high_water"] > 0
        rendered = render_counters()
        assert "vectorized" in rendered and "high-water" in rendered

    def test_streaming_bumps_arrival_buffer_peak(self, gaudi):
        reset_counters()
        _engine(gaudi, "vectorized").run(
            iter(poisson_arrivals(
                dynamic_sonnet_requests(32, seed=2), 30.0, seed=3
            ))
        )
        assert counters_snapshot()["arrival_buffer_peak"] > 0


class TestSlotRecycling:
    """Recycled slots must never alias two live requests."""

    @given(
        ops=st.lists(st.integers(min_value=0, max_value=2), min_size=1,
                     max_size=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_acquire_release_never_aliases(self, ops):
        core = EngineCore(num_blocks=4096, block_size=128, capacity=4)
        live = {}
        next_id = 0
        for op in ops:
            if op in (0, 1) or not live:
                request = Request(
                    request_id=next_id, input_tokens=64, output_tokens=8
                )
                slot = core.acquire(request)
                assert slot not in live, "slot handed out twice while live"
                live[slot] = request
                next_id += 1
            else:
                slot, request = next(iter(live.items()))
                del live[slot]
                core.release(slot)
            # Every live slot still maps to exactly its own request.
            for slot, request in live.items():
                assert core.objs[slot] is request
            assert len(set(live)) == len(live)
            free = set(core.free_slots)
            assert not free.intersection(live)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None)
    def test_fuzzed_workload_equivalence(self, seed):
        from repro.hw.device import get_device

        device = get_device("gaudi2")
        rng = np.random.default_rng(seed)
        count = int(rng.integers(1, 20))

        def make():
            gen = np.random.default_rng(seed)
            requests = []
            clock = 0.0
            for i in range(count):
                clock += float(gen.exponential(0.05))
                requests.append(Request(
                    request_id=i,
                    input_tokens=int(gen.integers(16, 700)),
                    output_tokens=int(gen.integers(1, 60)),
                    arrival_time=clock,
                ))
            return requests

        scalar, fast = _run_both(device, make, num_kv_blocks=512)
        assert scalar == fast


class TestBoundedMemory:
    def test_streaming_peak_independent_of_trace_length(self, gaudi):
        def peak(n, trace=True):
            engine = _engine(gaudi, "vectorized", retain_requests=False)
            arrivals = poisson_arrivals(
                iter_dynamic_sonnet_requests(n, seed=0), 10.0, seed=0
            )
            if not trace:
                engine.run(arrivals)
                return 0
            tracemalloc.start()
            engine.run(arrivals)
            _, high = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return high

        # Untraced warmup fills the bounded cost-model caches, so the
        # traced runs below measure only per-run engine state.
        peak(3000, trace=False)
        small, large = peak(300), peak(3000)
        # A 10x longer trace must not grow the peak footprint by more
        # than a small constant factor.
        assert large < 3 * small
