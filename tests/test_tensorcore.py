"""A100 Tensor Core GEMM model."""

import pytest

from repro.hw.spec import DType
from repro.hw.tensorcore import TensorCoreModel


@pytest.fixture(scope="module")
def tc():
    return TensorCoreModel()


class TestTileSelection:
    def test_large_gemm_uses_large_tile(self, tc):
        tile = tc.select_tile(8192, 8192, 8192)
        assert tile[0] * tile[1] >= 128 * 128

    def test_small_gemm_uses_small_tile(self, tc):
        tile = tc.select_tile(128, 1024, 128)
        assert tile[0] * tile[1] <= 128 * 128


class TestEstimates:
    def test_large_square_near_90_percent(self, tc):
        """The model's calibrated ceiling for big square GEMMs."""
        assert tc.gemm(8192, 8192, 8192).utilization == pytest.approx(0.90, abs=0.03)

    def test_never_exceeds_peak(self, tc):
        for s in (256, 1024, 4096, 16384):
            assert tc.gemm(s, s, s).utilization <= 1.0

    def test_wave_quantization_hurts_just_over_full_wave(self, tc):
        # 109 tiles on 108 SMs takes 2 waves.
        aligned = tc.gemm(128 * 9, 4096, 128 * 12)   # 108 tiles
        over = tc.gemm(128 * 10, 4096, 128 * 11)     # 110 tiles -> 2 waves
        assert over.utilization < aligned.utilization

    def test_irregular_gemm_memory_bound(self, tc):
        assert tc.gemm(8192, 8192, 16).memory_bound

    def test_skinny_bandwidth_derate(self, tc):
        """Decode-shape GEMMs run below STREAM-level bandwidth."""
        skinny = tc.gemm(64, 8192, 8192)
        wide = tc.gemm(8192, 8192, 8192)
        assert skinny.memory_bound
        # effective bandwidth of the skinny GEMM is below the square one's ceiling
        skinny_bw = 2 * (64 * 8192 + 8192 * 8192 + 64 * 8192) / skinny.time
        assert skinny_bw < 0.85 * 2.0e12

    def test_fp32_uses_tf32_path(self, tc):
        """FP32 matmuls route through TF32 Tensor Cores (156 TFLOPS)."""
        estimate = tc.gemm(8192, 8192, 8192, DType.FP32)
        assert 100 < estimate.achieved_flops / 1e12 < 156

    def test_invalid_shape_raises(self, tc):
        with pytest.raises(ValueError):
            tc.gemm(128, -1, 128)


class TestBatched:
    def test_batched_fills_waves(self, tc):
        single = tc.gemm(64, 512, 64)
        batched = tc.batched_gemm(256, 64, 512, 64)
        assert batched.utilization > single.utilization

    def test_invalid_batch_raises(self, tc):
        with pytest.raises(ValueError):
            tc.batched_gemm(0, 64, 64, 64)


class TestVsGaudi:
    def test_gaudi_wins_all_square_shapes(self, tc, gaudi):
        """Figure 4: Gaudi-2 consistently outperforms A100."""
        for s in (512, 1024, 2048, 4096, 8192):
            assert gaudi.gemm(s, s, s).achieved_flops > tc.gemm(s, s, s).achieved_flops

    def test_utilization_gap_largest_midrange(self, tc, gaudi):
        """Figure 5: the biggest utilization delta sits at mid sizes."""
        deltas = {
            s: gaudi.gemm(s, s, s).utilization - tc.gemm(s, s, s).utilization
            for s in (512, 1024, 2048, 8192)
        }
        assert max(deltas, key=deltas.get) in (1024, 2048)
