"""Dense attention cost models (FlashAttention / FusedSDPA)."""

import pytest

from repro.kernels.attention import (
    AttentionConfig,
    attention_time,
    flash_attention_time,
    fused_sdpa_time,
)


def _config(batch=8, seq=2048, q_heads=32, kv_heads=8, head_dim=128):
    return AttentionConfig(
        batch=batch, q_heads=q_heads, kv_heads=kv_heads, head_dim=head_dim,
        seq_q=seq, seq_kv=seq,
    )


class TestConfig:
    def test_flops_scale_quadratically_in_seq(self):
        assert _config(seq=4096).flops == pytest.approx(4 * _config(seq=2048).flops)

    def test_causal_halves_flops(self):
        causal = _config()
        full = AttentionConfig(batch=8, q_heads=32, kv_heads=8, head_dim=128,
                               seq_q=2048, seq_kv=2048, causal=False)
        assert causal.flops == pytest.approx(full.flops / 2)

    def test_gqa_requires_divisible_heads(self):
        with pytest.raises(ValueError):
            AttentionConfig(batch=1, q_heads=30, kv_heads=8, head_dim=64,
                            seq_q=16, seq_kv=16)

    def test_kv_bytes_use_kv_heads(self):
        config = _config(q_heads=32, kv_heads=8)
        assert config.kv_bytes == 2 * 8 * 8 * 2048 * 128 * 2


class TestTiming:
    def test_dispatch_by_device(self, gaudi, a100):
        config = _config()
        assert attention_time(gaudi, config).kernel == "fused-sdpa"
        assert attention_time(a100, config).kernel == "flash-attention"

    def test_long_seq_compute_bound(self, gaudi, a100):
        config = _config(seq=8192)
        assert not attention_time(gaudi, config).memory_bound
        assert not attention_time(a100, config).memory_bound

    def test_short_seq_memory_bound(self, a100):
        assert attention_time(a100, _config(batch=1, seq=128)).memory_bound

    def test_fused_sdpa_less_efficient_than_flash(self, gaudi, a100):
        """The fusion gap the Discussion section attributes to the
        missing low-level MME interface: FusedSDPA sustains a smaller
        fraction of its matrix peak than FlashAttention does."""
        config = _config(seq=8192)
        gaudi_eff = config.flops / (
            fused_sdpa_time(gaudi, config).compute_time * 432e12
        )
        a100_eff = config.flops / (
            flash_attention_time(a100, config).compute_time * 312e12
        )
        assert gaudi_eff < a100_eff

    def test_spill_penalty_for_long_sequences(self, gaudi):
        # A huge score slice exceeds SRAM and pays spill traffic.
        big = _config(batch=64, seq=4096)
        result = fused_sdpa_time(gaudi, big)
        assert result.memory_time > 0

    def test_time_monotone_in_batch(self, gaudi):
        t1 = fused_sdpa_time(gaudi, _config(batch=1)).time
        t8 = fused_sdpa_time(gaudi, _config(batch=8)).time
        assert t8 > t1

    def test_unknown_device_rejected(self):
        with pytest.raises(TypeError):
            attention_time(object(), _config())
