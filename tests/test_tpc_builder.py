"""TPC kernel-builder DSL (unrolling, scheduling, register renaming)."""

import pytest

from repro.tpc.builder import MAX_ACCESS_BYTES, TpcKernelBuilder, VECTOR_REGISTER_FILE
from repro.tpc.isa import Opcode, Slot


def _add_body(b):
    x = b.load_tensor("a")
    y = b.load_tensor("b")
    r = b.vec(Opcode.ADD, x, y)
    b.store_tensor("c", r)


class TestEmission:
    def test_body_instruction_count(self):
        kernel = TpcKernelBuilder("add").build_loop(_add_body, iterations=100)
        # 2 loads + 1 add + 1 store + loop_end
        assert len(kernel.body) == 5

    def test_unroll_replicates_body(self):
        kernel = TpcKernelBuilder("add").build_loop(_add_body, iterations=100, unroll=4)
        assert len(kernel.body) == 4 * 4 + 1

    def test_trip_count_divided_by_unroll(self):
        kernel = TpcKernelBuilder("add").build_loop(_add_body, iterations=100, unroll=4)
        assert kernel.trips == 25

    def test_trip_count_rounds_up(self):
        kernel = TpcKernelBuilder("add").build_loop(_add_body, iterations=101, unroll=4)
        assert kernel.trips == 26

    def test_wide_load_splits_into_256b_chunks(self):
        def body(b):
            x = b.load_tensor("a", access_bytes=1024)
            b.store_tensor("c", x, access_bytes=1024)

        kernel = TpcKernelBuilder("wide").build_loop(body, iterations=1)
        loads = [i for i in kernel.body if i.opcode is Opcode.LD_TNSR]
        assert len(loads) == 4
        assert all(i.access_bytes == MAX_ACCESS_BYTES for i in loads)

    def test_num_streams_counts_distinct_tensors(self):
        kernel = TpcKernelBuilder("add").build_loop(_add_body, iterations=1)
        assert kernel.num_streams == 3

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            TpcKernelBuilder("x").build_loop(_add_body, iterations=0)
        with pytest.raises(ValueError):
            TpcKernelBuilder("x").build_loop(_add_body, iterations=1, unroll=0)

    def test_invalid_access_bytes_raise(self):
        builder = TpcKernelBuilder("x")
        with pytest.raises(ValueError):
            builder.load_tensor("a", access_bytes=0)
        with pytest.raises(ValueError):
            builder.gather("a", access_bytes=-1)


class TestScheduling:
    def test_loads_hoisted_before_arithmetic(self):
        kernel = TpcKernelBuilder("add").build_loop(_add_body, iterations=1, unroll=2)
        slots = [i.slot for i in kernel.body[:-1]]
        first_vector = slots.index(Slot.VECTOR)
        assert all(s is Slot.LOAD for s in slots[:first_vector])

    def test_stores_sunk_after_arithmetic(self):
        kernel = TpcKernelBuilder("add").build_loop(_add_body, iterations=1, unroll=2)
        slots = [i.slot for i in kernel.body[:-1]]
        first_store = slots.index(Slot.STORE)
        assert all(s is Slot.STORE for s in slots[first_store:])

    def test_arithmetic_interleaved_across_copies(self):
        """Chained ops from different unroll copies must alternate so
        independent chains hide the 4-cycle latency."""

        def chain_body(b):
            x = b.load_tensor("a")
            acc = b.vec(Opcode.ADD, x, x)
            acc = b.vec(Opcode.ADD, acc, acc)
            b.store_tensor("c", acc)

        kernel = TpcKernelBuilder("chain").build_loop(chain_body, iterations=1, unroll=2)
        adds = [i for i in kernel.body if i.opcode is Opcode.ADD]
        # first adds of both copies come before second adds of either
        assert adds[0].sources != adds[1].sources
        assert adds[0].dest in adds[2].sources or adds[1].dest in adds[2].sources

    def test_loop_end_is_last(self):
        kernel = TpcKernelBuilder("add").build_loop(_add_body, iterations=1, unroll=3)
        assert kernel.body[-1].opcode is Opcode.LOOP_END


class TestRegisterRenaming:
    def test_unroll_copies_use_distinct_registers(self):
        kernel = TpcKernelBuilder("add").build_loop(_add_body, iterations=1, unroll=2)
        dests = [i.dest for i in kernel.body if i.dest is not None]
        assert len(set(dests)) == len(dests)

    def test_register_file_wraparound(self):
        """Unrolling past the register file reuses registers."""

        def body(b):
            x = b.load_tensor("a")
            b.store_tensor("c", x)

        kernel = TpcKernelBuilder("spill").build_loop(
            body, iterations=1, unroll=VECTOR_REGISTER_FILE + 5
        )
        dests = [i.dest for i in kernel.body if i.dest is not None]
        assert len(set(dests)) == VECTOR_REGISTER_FILE

    def test_gather_has_no_destination_register(self):
        def body(b):
            b.gather("table", access_bytes=256)

        kernel = TpcKernelBuilder("g").build_loop(body, iterations=1)
        assert kernel.body[0].dest is None
