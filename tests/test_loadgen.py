"""Open-loop load generation and sustainable-rate search."""

import pytest

from repro.hw import get_device
from repro.models.llama import DecodeAttention, LLAMA_3_1_8B, LlamaCostModel
from repro.serving import (
    LlmServingEngine,
    fixed_length_requests,
    max_sustainable_rate,
    poisson_arrivals,
    run_load_test,
)
from repro.serving.loadgen import run_load_sweep


def _engine_factory(device_name="gaudi2", max_batch=16):
    def factory():
        return LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, get_device(device_name)),
            DecodeAttention.PAGED_OPT,
            max_decode_batch=max_batch,
        )

    return factory


def _request_factory(n=24):
    return lambda: fixed_length_requests(n, input_len=128, output_len=32)


# Top-level (picklable) factories for the process-pool sweep tests.
def _small_engine():
    return LlmServingEngine(
        LlamaCostModel(LLAMA_3_1_8B, get_device("gaudi2")),
        DecodeAttention.PAGED_OPT,
        max_decode_batch=8,
    )


def _small_requests():
    return fixed_length_requests(10, input_len=128, output_len=16)


class TestPoissonArrivals:
    def test_arrivals_monotone(self):
        requests = poisson_arrivals(fixed_length_requests(20, 100, 10), rate=5.0, seed=1)
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)
        assert times[0] > 0

    def test_rate_controls_spacing(self):
        slow = poisson_arrivals(fixed_length_requests(200, 100, 10), rate=1.0, seed=2)
        fast = poisson_arrivals(fixed_length_requests(200, 100, 10), rate=100.0, seed=2)
        assert fast[-1].arrival_time < slow[-1].arrival_time

    def test_seeded_determinism(self):
        a = poisson_arrivals(fixed_length_requests(10, 100, 10), 5.0, seed=3)
        b = poisson_arrivals(fixed_length_requests(10, 100, 10), 5.0, seed=3)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            poisson_arrivals(fixed_length_requests(4, 100, 10), 0.0)


class TestLoadTest:
    def test_light_load_not_saturated(self):
        report = run_load_test(_engine_factory(), _request_factory(), offered_rate=2.0)
        assert not report.saturated
        assert report.mean_ttft < 1.0

    def test_overload_saturates(self):
        report = run_load_test(_engine_factory(max_batch=2), _request_factory(48),
                               offered_rate=500.0)
        assert report.saturated
        assert report.achieved_rate < report.offered_rate

    def test_latency_grows_with_load(self):
        light = run_load_test(_engine_factory(), _request_factory(), 2.0)
        heavy = run_load_test(_engine_factory(), _request_factory(), 200.0)
        assert heavy.p99_ttft > light.p99_ttft
        assert heavy.p99_ttft >= heavy.mean_ttft


class TestLoadSweep:
    RATES = [2.0, 400.0]

    def test_serial_sweep_is_deterministic(self):
        a = run_load_sweep(
            engine_factory=_small_engine, request_factory=_small_requests,
            rates=self.RATES, seed=5,
        )
        b = run_load_sweep(
            engine_factory=_small_engine, request_factory=_small_requests,
            rates=self.RATES, seed=5,
        )
        assert a == b

    def test_parallel_matches_serial(self):
        """Satellite 6: the sweep is bit-identical across a process pool."""
        serial = run_load_sweep(
            engine_factory=_small_engine, request_factory=_small_requests,
            rates=self.RATES, seed=5, workers=1,
        )
        parallel = run_load_sweep(
            engine_factory=_small_engine, request_factory=_small_requests,
            rates=self.RATES, seed=5, workers=2,
        )
        assert serial == parallel

    def test_points_get_distinct_seeds(self):
        # Two identical rates must still draw different arrival processes.
        reports = run_load_sweep(
            engine_factory=_small_engine, request_factory=_small_requests,
            rates=[8.0, 8.0], seed=5,
        )
        assert reports[0] != reports[1]


class TestSustainableRate:
    def test_bisection_converges_between_bounds(self):
        rate = max_sustainable_rate(
            _engine_factory(), _request_factory(), low=1.0, high=500.0, iterations=5
        )
        assert 1.0 <= rate <= 500.0
        # The found rate must itself be sustainable.
        report = run_load_test(_engine_factory(), _request_factory(), rate)
        assert not report.saturated

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            max_sustainable_rate(_engine_factory(), _request_factory(), 10.0, 5.0)

    def test_parallel_search_finds_sustainable_rate(self):
        rate = max_sustainable_rate(
            _small_engine, _small_requests, low=1.0, high=500.0,
            iterations=4, workers=2,
        )
        assert 1.0 <= rate <= 500.0
        report = run_load_test(
            engine_factory=_small_engine, request_factory=_small_requests,
            offered_rate=rate,
        )
        assert not report.saturated

    def test_gaudi_sustains_higher_rate_than_a100(self):
        """The Figure 17(d) ordering under open-loop load."""
        gaudi_rate = max_sustainable_rate(
            _engine_factory("gaudi2"), _request_factory(), 1.0, 400.0, iterations=5
        )
        a100_rate = max_sustainable_rate(
            _engine_factory("a100"), _request_factory(), 1.0, 400.0, iterations=5
        )
        assert gaudi_rate >= 0.8 * a100_rate


class TestStreamingLoadgen:
    """Lazy arrival iterables and the factory-misuse guard."""

    def test_lazy_poisson_matches_list(self):
        listed = poisson_arrivals(fixed_length_requests(50, 100, 10), 5.0, seed=4)
        lazy = list(
            poisson_arrivals(iter(fixed_length_requests(50, 100, 10)), 5.0, seed=4)
        )
        assert [r.arrival_time for r in lazy] == [r.arrival_time for r in listed]

    def test_lazy_diurnal_matches_list(self):
        from repro.serving.loadgen import diurnal_arrivals

        listed = diurnal_arrivals(
            fixed_length_requests(50, 100, 10), 5.0, seed=4
        )
        lazy = list(
            diurnal_arrivals(
                iter(fixed_length_requests(50, 100, 10)), 5.0, seed=4
            )
        )
        assert [r.arrival_time for r in lazy] == [r.arrival_time for r in listed]

    def test_streaming_factory_matches_list_factory(self):
        list_report = run_load_test(
            engine_factory=_small_engine, request_factory=_small_requests,
            offered_rate=20.0,
        )
        stream_report = run_load_test(
            engine_factory=_small_engine,
            request_factory=lambda: iter(_small_requests()),
            offered_rate=20.0,
        )
        assert stream_report == list_report

    def test_bare_generator_factory_rejected(self):
        from repro.audit import ConfigError

        with pytest.raises(ConfigError, match="zero-argument callable"):
            run_load_test(
                engine_factory=_small_engine,
                request_factory=iter(_small_requests()),
                offered_rate=20.0,
            )

    def test_bare_generator_rejected_in_sweep(self):
        from repro.audit import ConfigError

        with pytest.raises(ConfigError, match="zero-argument callable"):
            run_load_sweep(
                engine_factory=_small_engine,
                request_factory=iter(_small_requests()),
                rates=[5.0, 10.0],
            )

    def test_non_callable_factory_rejected(self):
        from repro.audit import ConfigError

        with pytest.raises(ConfigError, match="callable"):
            run_load_test(
                engine_factory=_small_engine,
                request_factory=_small_requests(),
                offered_rate=20.0,
            )
