"""Open-loop load generation and sustainable-rate search."""

import pytest

from repro.hw import get_device
from repro.models.llama import DecodeAttention, LLAMA_3_1_8B, LlamaCostModel
from repro.serving import (
    LlmServingEngine,
    fixed_length_requests,
    max_sustainable_rate,
    poisson_arrivals,
    run_load_test,
)


def _engine_factory(device_name="gaudi2", max_batch=16):
    def factory():
        return LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, get_device(device_name)),
            DecodeAttention.PAGED_OPT,
            max_decode_batch=max_batch,
        )

    return factory


def _request_factory(n=24):
    return lambda: fixed_length_requests(n, input_len=128, output_len=32)


class TestPoissonArrivals:
    def test_arrivals_monotone(self):
        requests = poisson_arrivals(fixed_length_requests(20, 100, 10), rate=5.0, seed=1)
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)
        assert times[0] > 0

    def test_rate_controls_spacing(self):
        slow = poisson_arrivals(fixed_length_requests(200, 100, 10), rate=1.0, seed=2)
        fast = poisson_arrivals(fixed_length_requests(200, 100, 10), rate=100.0, seed=2)
        assert fast[-1].arrival_time < slow[-1].arrival_time

    def test_seeded_determinism(self):
        a = poisson_arrivals(fixed_length_requests(10, 100, 10), 5.0, seed=3)
        b = poisson_arrivals(fixed_length_requests(10, 100, 10), 5.0, seed=3)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            poisson_arrivals(fixed_length_requests(4, 100, 10), 0.0)


class TestLoadTest:
    def test_light_load_not_saturated(self):
        report = run_load_test(_engine_factory(), _request_factory(), offered_rate=2.0)
        assert not report.saturated
        assert report.mean_ttft < 1.0

    def test_overload_saturates(self):
        report = run_load_test(_engine_factory(max_batch=2), _request_factory(48),
                               offered_rate=500.0)
        assert report.saturated
        assert report.achieved_rate < report.offered_rate

    def test_latency_grows_with_load(self):
        light = run_load_test(_engine_factory(), _request_factory(), 2.0)
        heavy = run_load_test(_engine_factory(), _request_factory(), 200.0)
        assert heavy.p99_ttft > light.p99_ttft
        assert heavy.p99_ttft >= heavy.mean_ttft


class TestSustainableRate:
    def test_bisection_converges_between_bounds(self):
        rate = max_sustainable_rate(
            _engine_factory(), _request_factory(), low=1.0, high=500.0, iterations=5
        )
        assert 1.0 <= rate <= 500.0
        # The found rate must itself be sustainable.
        report = run_load_test(_engine_factory(), _request_factory(), rate)
        assert not report.saturated

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            max_sustainable_rate(_engine_factory(), _request_factory(), 10.0, 5.0)

    def test_gaudi_sustains_higher_rate_than_a100(self):
        """The Figure 17(d) ordering under open-loop load."""
        gaudi_rate = max_sustainable_rate(
            _engine_factory("gaudi2"), _request_factory(), 1.0, 400.0, iterations=5
        )
        a100_rate = max_sustainable_rate(
            _engine_factory("a100"), _request_factory(), 1.0, 400.0, iterations=5
        )
        assert gaudi_rate >= 0.8 * a100_rate
