"""TPC index-space partitioning (Figure 3)."""

import pytest

from repro.tpc.index_space import IndexSpace, partition_members


class TestIndexSpace:
    def test_num_members(self):
        assert IndexSpace([4, 6]).num_members == 24

    def test_max_five_dims(self):
        IndexSpace([1, 1, 1, 1, 1])
        with pytest.raises(ValueError):
            IndexSpace([1] * 6)

    def test_zero_dims_rejected(self):
        with pytest.raises(ValueError):
            IndexSpace([])

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            IndexSpace([4, -1])

    def test_steps_default_to_one(self):
        assert IndexSpace([3, 3]).elements_per_member == 1

    def test_steps_give_elements_per_member(self):
        # Figure 2(c): a 256 B FP32 vector covers 64 elements per step.
        space = IndexSpace([10, 4], steps=[64, 1])
        assert space.elements_per_member == 64

    def test_step_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            IndexSpace([4, 4], steps=[1])

    def test_members_enumerate_all_coords(self):
        space = IndexSpace([2, 3])
        members = list(space.members())
        assert len(members) == 6
        assert members[0].coords == (0, 0)
        assert members[-1].coords == (1, 2)
        assert members[3][0] == 1  # row-major order

    def test_for_elements_covers_array(self):
        space = IndexSpace.for_elements(24_000_000, elements_per_member=64, width=4)
        assert space.num_members * 64 >= 24_000_000

    def test_for_elements_rejects_bad_args(self):
        with pytest.raises(ValueError):
            IndexSpace.for_elements(0, 64)

    def test_repr(self):
        assert "sizes=(2, 3)" in repr(IndexSpace([2, 3]))


class TestPartition:
    def test_even_split(self):
        assert partition_members(48, 24) == [2] * 24

    def test_remainder_spread_round_robin(self):
        counts = partition_members(50, 24)
        assert sum(counts) == 50
        assert max(counts) - min(counts) == 1

    def test_fewer_members_than_tpcs(self):
        counts = partition_members(5, 24)
        assert counts.count(1) == 5
        assert counts.count(0) == 19

    def test_zero_members_ok(self):
        assert partition_members(0, 4) == [0, 0, 0, 0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            partition_members(-1, 4)
        with pytest.raises(ValueError):
            partition_members(4, 0)
