"""Unit tests for the observability layer (repro.obs)."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Tracer,
    chrome_trace_events,
    chrome_trace_json,
    flat_json,
    text_summary,
)


class TestSpanNesting:
    def test_begin_parents_under_innermost_open_span(self):
        tracer = Tracer()
        outer = tracer.begin("run", "engine", 0.0)
        inner = tracer.begin("step", "engine", 0.0)
        leaf = tracer.begin("prefill", "engine", 0.1)
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert leaf.parent_id == inner.span_id

    def test_span_ids_are_sequential(self):
        tracer = Tracer()
        spans = [tracer.begin(f"s{i}", "c", float(i)) for i in range(4)]
        assert [s.span_id for s in spans] == [1, 2, 3, 4]

    def test_end_requires_lifo_order(self):
        tracer = Tracer()
        outer = tracer.begin("outer", "c", 0.0)
        tracer.begin("inner", "c", 0.0)
        with pytest.raises(ValueError, match="innermost"):
            tracer.end(outer, 1.0)

    def test_end_before_start_rejected(self):
        tracer = Tracer()
        span = tracer.begin("s", "c", 5.0)
        with pytest.raises(ValueError, match="before it starts"):
            tracer.end(span, 4.0)

    def test_record_does_not_touch_the_stack(self):
        tracer = Tracer()
        parent = tracer.begin("step", "engine", 0.0)
        child = tracer.record("allreduce", "collective", 0.2, 0.3, size_bytes=1024)
        assert tracer.open_spans == 1
        assert child.parent_id == parent.span_id
        assert child.end == 0.3
        assert child.args["size_bytes"] == 1024

    def test_record_sequential_advances_cursor(self):
        tracer = Tracer()
        first = tracer.record_sequential("gemm", "kernel", 1.5)
        second = tracer.record_sequential("gemm", "kernel", 0.5)
        assert (first.start, first.end) == (0.0, 1.5)
        assert (second.start, second.end) == (1.5, 2.0)

    def test_finish_closes_open_spans_innermost_first(self):
        tracer = Tracer()
        outer = tracer.begin("outer", "c", 0.0)
        inner = tracer.begin("inner", "c", 1.0)
        tracer.finish(9.0)
        assert tracer.open_spans == 0
        assert outer.end == 9.0 and inner.end == 9.0

    def test_category_busy_sums_closed_spans(self):
        tracer = Tracer()
        tracer.record("a", "engine", 0.0, 1.0)
        tracer.record("b", "engine", 1.0, 1.5)
        tracer.begin("open", "engine", 2.0)  # open: not counted
        assert tracer.category_busy("engine") == pytest.approx(1.5)

    def test_truthiness(self):
        assert Tracer()
        assert not NullTracer()
        assert not NULL_TRACER

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        span = tracer.begin("s", "c", 0.0)
        tracer.end(span, 1.0)
        tracer.record("r", "c", 0.0, 1.0)
        tracer.counter("n", 0.0, 1.0)
        tracer.instant("i", "c", 0.0)
        tracer.async_begin("a", "c", 0.0, 1)
        tracer.async_end("a", "c", 1.0, 1)
        assert tracer.spans == []
        assert tracer.counters == []
        assert tracer.instants == []
        assert tracer.async_events == []


class TestExporters:
    def _tracer(self):
        tracer = Tracer("test-proc")
        run = tracer.begin("run", "engine", 0.0)
        tracer.record("alloc", "kv", 0.0, 0.0, blocks=2)
        tracer.counter("power.watts", 0.5, 123.0)
        tracer.instant("preempt", "scheduler", 0.25, request_id=7)
        tracer.async_begin("request-1", "request", 0.0, 1)
        tracer.async_end("request-1", "request", 1.0, 1)
        tracer.end(run, 1.0)
        return tracer

    def test_chrome_trace_structure(self):
        document = json.loads(chrome_trace_json(self._tracer()))
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X", "C", "i", "b", "e"} <= phases
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "test-proc" in names

    def test_tids_allocated_in_first_seen_order(self):
        events = chrome_trace_events(self._tracer())
        tracks = {
            e["args"]["name"]: e["tid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert tracks["engine"] == 1
        assert tracks["kv"] == 2
        assert tracks["scheduler"] == 3
        assert tracks["request"] == 4

    def test_timestamps_are_microseconds(self):
        events = chrome_trace_events(self._tracer())
        run = next(e for e in events if e.get("name") == "run")
        assert run["ts"] == 0.0
        assert run["dur"] == pytest.approx(1e6)

    def test_open_spans_not_exported(self):
        tracer = Tracer()
        tracer.begin("open", "engine", 0.0)
        events = chrome_trace_events(tracer)
        assert not [e for e in events if e["ph"] == "X"]

    def test_flat_json_round_trips(self):
        document = json.loads(flat_json(self._tracer()))
        assert document["process"] == "test-proc"
        assert document["spans"][0]["name"] == "run"
        assert document["counters"][0]["value"] == 123.0

    def test_text_summary_lists_categories(self):
        summary = text_summary(self._tracer())
        assert "engine" in summary and "kv" in summary
        assert "hottest spans" in summary


class TestMetrics:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").inc(-1)

    def test_gauge_tracks_high_water_mark(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.max_value == 5.0

    def test_gauge_high_water_mark_handles_negative_start(self):
        gauge = Gauge("g")
        gauge.set(-3.0)
        assert gauge.max_value == -3.0

    def test_histogram_statistics(self):
        histogram = Histogram("h")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(2.5)
        assert histogram.min == 1.0 and histogram.max == 4.0
        from repro.core.metrics import percentile

        assert histogram.percentile(50) == percentile([1.0, 2.0, 3.0, 4.0], 50)
        assert histogram.percentile(100) == 4.0

    def test_empty_histogram_is_zeroes(self):
        histogram = Histogram("h")
        assert histogram.mean == 0.0
        assert histogram.percentile(99) == 0.0

    def test_registry_lazily_creates_and_reuses(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1
        assert registry.get("missing") is None

    def test_registry_rejects_type_conflicts(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="not a Gauge"):
            registry.gauge("x")

    def test_snapshot_and_json_are_sorted_and_deterministic(self):
        registry = MetricsRegistry()
        registry.gauge("b").set(1.0)
        registry.counter("a").inc()
        registry.histogram("c").observe(2.0)
        assert list(registry.snapshot()) == ["a", "b", "c"]
        assert registry.to_json() == registry.to_json()

    def test_render_mentions_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(3)
        registry.gauge("level").set(0.5)
        registry.histogram("lat").observe(1.0)
        rendered = registry.render()
        for name in ("events", "level", "lat"):
            assert name in rendered
        assert MetricsRegistry().render() == "  (no metrics recorded)"
