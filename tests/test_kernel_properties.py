"""Property-based tests over the operator-level invariants.

These pin the *orderings* the paper's case studies rest on: the
optimized implementation never loses to its baseline, utilizations stay
physical, and costs are monotone in work -- across randomly drawn
configurations, not just the sweep points the figures use.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.kernels.embedding import (
    A100Fbgemm,
    EmbeddingConfig,
    GaudiBatchedTable,
    GaudiSdkSingleTable,
    GaudiSingleTable,
)
from repro.kernels.paged_attention import (
    PagedAttentionConfig,
    a100_paged_attention,
    vllm_base_paged_attention,
    vllm_opt_paged_attention,
)

_SDK = GaudiSdkSingleTable()
_SINGLE = GaudiSingleTable()
_BATCHED = GaudiBatchedTable()
_FBGEMM = A100Fbgemm()

embedding_configs = st.builds(
    EmbeddingConfig,
    num_tables=st.integers(1, 24),
    rows_per_table=st.sampled_from([10_000, 1_000_000]),
    embedding_dim=st.sampled_from([8, 16, 32, 64, 128, 256]),
    pooling=st.integers(1, 32),
    batch_size=st.sampled_from([16, 128, 1024, 8192]),
)


class TestEmbeddingInvariants:
    @given(config=embedding_configs)
    @settings(max_examples=60, deadline=None)
    def test_batched_never_slower_than_single(self, config):
        assert _BATCHED.run(config).time <= _SINGLE.run(config).time * 1.0001

    @given(config=embedding_configs)
    @settings(max_examples=60, deadline=None)
    def test_custom_single_never_slower_than_sdk(self, config):
        assert _SINGLE.run(config).time <= _SDK.run(config).time * 1.0001

    @given(config=embedding_configs)
    @settings(max_examples=60, deadline=None)
    def test_utilization_physical(self, config):
        for operator in (_SDK, _SINGLE, _BATCHED, _FBGEMM):
            result = operator.run(config)
            assert 0.0 < result.bandwidth_utilization <= 1.0
            assert result.time > 0

    @given(config=embedding_configs, factor=st.sampled_from([2, 4]))
    @settings(max_examples=40, deadline=None)
    def test_time_monotone_in_batch(self, config, factor):
        bigger = EmbeddingConfig(
            num_tables=config.num_tables,
            rows_per_table=config.rows_per_table,
            embedding_dim=config.embedding_dim,
            pooling=config.pooling,
            batch_size=config.batch_size * factor,
        )
        for operator in (_BATCHED, _FBGEMM):
            assert operator.run(bigger).time >= operator.run(config).time * 0.999


# The serving regime the paper sweeps (batch >= 4, seq >= 512); below
# it, the optimized path's pipelining overhead can legitimately exceed
# the baseline's cost on trivially small KV footprints.
paged_configs = st.builds(
    PagedAttentionConfig.uniform,
    batch=st.integers(4, 64),
    seq_len=st.sampled_from([512, 2048, 8192]),
    q_heads=st.sampled_from([16, 32]),
    kv_heads=st.sampled_from([4, 8]),
    head_dim=st.sampled_from([64, 128]),
)


class TestPagedAttentionInvariants:
    @given(config=paged_configs)
    @settings(max_examples=60, deadline=None)
    def test_opt_never_slower_than_base(self, config):
        assert (
            vllm_opt_paged_attention(config).time
            <= vllm_base_paged_attention(config).time * 1.0001
        )

    @given(config=paged_configs)
    @settings(max_examples=60, deadline=None)
    def test_times_positive_and_finite(self, config):
        for impl in (vllm_base_paged_attention, vllm_opt_paged_attention,
                     a100_paged_attention):
            result = impl(config)
            assert 0 < result.time < 10.0
            assert result.tokens_per_second > 0

    @given(
        batch=st.integers(1, 32),
        short=st.sampled_from([256, 512]),
        factor=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_time_monotone_in_context(self, batch, short, factor):
        small = PagedAttentionConfig.uniform(batch, short)
        large = PagedAttentionConfig.uniform(batch, short * factor)
        for impl in (vllm_base_paged_attention, vllm_opt_paged_attention):
            assert impl(large).time >= impl(small).time * 0.999

    @given(
        batch=st.integers(2, 32),
        max_seq=st.sampled_from([1024, 4096]),
        short=st.sampled_from([128, 256]),
    )
    @settings(max_examples=40, deadline=None)
    def test_padding_never_helps_base_relative_to_opt(self, batch, max_seq, short):
        assume(short < max_seq)
        uniform = PagedAttentionConfig.uniform(batch, max_seq)
        padded = PagedAttentionConfig(
            batch=batch,
            seq_lens=[max_seq] + [short] * (batch - 1),
            q_heads=32, kv_heads=8, head_dim=128,
        )
        ratio_uniform = (
            vllm_base_paged_attention(uniform).time
            / vllm_opt_paged_attention(uniform).time
        )
        ratio_padded = (
            vllm_base_paged_attention(padded).time
            / vllm_opt_paged_attention(padded).time
        )
        assert ratio_padded >= ratio_uniform * 0.999
