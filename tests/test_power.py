"""Activity-based power and energy model."""

import pytest

from repro.hw.power import (
    ActivityAccumulator,
    ActivityProfile,
    PowerModel,
    PowerSample,
)
from repro.hw.spec import A100_SPEC, GAUDI2_SPEC


@pytest.fixture(scope="module")
def gaudi_power():
    return PowerModel(GAUDI2_SPEC.power)


@pytest.fixture(scope="module")
def a100_power():
    return PowerModel(A100_SPEC.power)


class TestActivityProfile:
    def test_defaults_are_idle(self):
        profile = ActivityProfile()
        assert profile.matrix_busy == 0.0
        assert profile.comm_busy == 0.0

    @pytest.mark.parametrize("field", ["matrix_busy", "vector_busy", "memory_util", "comm_busy"])
    def test_out_of_range_raises(self, field):
        with pytest.raises(ValueError):
            ActivityProfile(**{field: 1.5})


class TestPowerModel:
    def test_idle_power(self, gaudi_power):
        assert gaudi_power.power(ActivityProfile()) == GAUDI2_SPEC.power.idle_watts

    def test_full_tilt_never_exceeds_tdp(self, gaudi_power, a100_power):
        profile = ActivityProfile(
            matrix_busy=1.0, vector_busy=1.0, memory_util=1.0, comm_busy=1.0
        )
        assert gaudi_power.power(profile) <= GAUDI2_SPEC.power.tdp_watts
        assert a100_power.power(profile) <= A100_SPEC.power.tdp_watts
        # The components sum close to the TDP budget.
        assert gaudi_power.power(profile) >= 0.9 * GAUDI2_SPEC.power.tdp_watts

    def test_power_gating_scales_matrix_term(self, gaudi_power):
        full = gaudi_power.power(ActivityProfile(matrix_busy=0.5))
        gated = gaudi_power.power(
            ActivityProfile(matrix_busy=0.5, matrix_active_fraction=0.25)
        )
        assert gated < full

    def test_a100_has_no_power_gating(self, a100_power):
        full = a100_power.power(ActivityProfile(matrix_busy=0.5))
        gated = a100_power.power(
            ActivityProfile(matrix_busy=0.5, matrix_active_fraction=0.25)
        )
        assert gated == full

    def test_energy_is_power_times_time(self, gaudi_power):
        profile = ActivityProfile(memory_util=0.5)
        assert gaudi_power.energy(profile, 2.0) == pytest.approx(
            2.0 * gaudi_power.power(profile)
        )

    def test_negative_time_raises(self, gaudi_power):
        with pytest.raises(ValueError):
            gaudi_power.sample(ActivityProfile(), -1.0)

    def test_sample_joules(self):
        assert PowerSample(watts=100.0, seconds=3.0).joules == 300.0


class TestAccumulator:
    def test_profile_normalizes_by_wall_time(self):
        acc = ActivityAccumulator()
        acc.add_matrix(0.5)
        acc.add_memory(1.0)
        profile = acc.profile(2.0)
        assert profile.matrix_busy == pytest.approx(0.25)
        assert profile.memory_util == pytest.approx(0.5)

    def test_active_fraction_is_work_weighted(self):
        acc = ActivityAccumulator()
        acc.add_matrix(1.0, active_fraction=1.0)
        acc.add_matrix(1.0, active_fraction=0.5)
        assert acc.profile(4.0).matrix_active_fraction == pytest.approx(0.75)

    def test_busy_fractions_capped_at_one(self):
        acc = ActivityAccumulator()
        acc.add_vector(10.0)
        assert acc.profile(1.0).vector_busy == 1.0

    def test_merge(self):
        a, b = ActivityAccumulator(), ActivityAccumulator()
        a.add_memory(1.0)
        b.add_memory(2.0)
        b.add_comm(0.5)
        a.merge(b)
        assert a.memory_seconds == 3.0
        assert a.comm_seconds == 0.5

    def test_negative_work_raises(self):
        acc = ActivityAccumulator()
        with pytest.raises(ValueError):
            acc.add_matrix(-1.0)

    def test_zero_wall_time_raises(self):
        with pytest.raises(ValueError):
            ActivityAccumulator().profile(0.0)
