"""Multi-TPC launch model (Figure 8(c) mechanics)."""

import pytest

from repro.hw.spec import GAUDI2_SPEC
from repro.tpc.builder import TpcKernelBuilder
from repro.tpc.isa import Opcode
from repro.tpc.launcher import TpcLauncher


@pytest.fixture(scope="module")
def launcher():
    return TpcLauncher()


def _triad_kernel(iterations, unroll=4):
    def body(b):
        x = b.load_tensor("a")
        y = b.load_tensor("b")
        r = b.vec(Opcode.MAC, x, y)
        b.store_tensor("c", r)

    return TpcKernelBuilder("triad").build_loop(body, iterations=iterations, unroll=unroll)


def _gather_kernel(iterations, access_bytes=256):
    def body(b):
        for _ in range(4):
            b.gather("table", access_bytes=access_bytes)

    return TpcKernelBuilder("gather").build_loop(body, iterations=iterations)


class TestLaunch:
    def test_launch_overhead_included(self, launcher):
        kernel = _triad_kernel(1000)
        with_overhead = launcher.launch(kernel)
        without = launcher.launch(kernel, include_launch_overhead=False)
        assert with_overhead.time - without.time == pytest.approx(
            GAUDI2_SPEC.kernel_launch_overhead
        )

    def test_invalid_tpc_count_raises(self, launcher):
        kernel = _triad_kernel(100)
        with pytest.raises(ValueError):
            launcher.launch(kernel, num_tpcs=0)
        with pytest.raises(ValueError):
            launcher.launch(kernel, num_tpcs=25)

    def test_bottleneck_labels(self, launcher):
        # Big streaming kernel on all TPCs -> HBM bound.
        big = launcher.launch(_triad_kernel(200_000))
        assert big.bottleneck == "hbm-bandwidth"
        # Same kernel on one TPC -> pipeline or port bound.
        one = launcher.launch(_triad_kernel(10_000), num_tpcs=1)
        assert one.bottleneck in ("tpc-pipeline", "tpc-memory-port")


class TestWeakScaling:
    """Figure 8(c): throughput scales with TPCs until HBM saturates."""

    def test_scaling_then_saturation(self, launcher):
        def gflops(cores):
            kernel = _triad_kernel(8000 * cores)
            return launcher.launch(kernel, num_tpcs=cores).achieved_flops / 1e9

        four, eight, twenty, twentyfour = (gflops(c) for c in (4, 8, 20, 24))
        assert eight == pytest.approx(2 * four, rel=0.1)   # linear region
        assert twentyfour == pytest.approx(twenty, rel=0.05)  # saturated

    def test_triad_saturates_near_670_gflops(self, launcher):
        """Paper: TRIAD saturates at ~670 GFLOPS chip-wide."""
        result = launcher.launch(_triad_kernel(200_000))
        assert result.achieved_flops / 1e9 == pytest.approx(670, rel=0.08)


class TestGatherLaunch:
    def test_gather_marked_random(self, launcher):
        result = launcher.launch(_gather_kernel(50_000))
        assert result.moved_bytes == result.useful_bytes  # 256 B aligned

    def test_gather_peak_utilization_matches_paper(self, launcher):
        """~70 % peak bandwidth utilization for 256 B gathers."""
        result = launcher.launch(_gather_kernel(50_000))
        assert result.bandwidth_utilization == pytest.approx(0.69, abs=0.05)

    def test_small_gather_wastes_bandwidth(self, launcher):
        small = launcher.launch(_gather_kernel(50_000, access_bytes=64))
        assert small.moved_bytes == 4 * small.useful_bytes
        assert small.bandwidth_utilization < 0.25
