"""Output-stationary systolic array model."""

import pytest

from repro.hw.systolic import (
    SystolicArray,
    SystolicGeometry,
    best_geometry,
    blocked_gemm_traffic,
)


class TestGeometry:
    def test_active_macs(self):
        assert SystolicGeometry(256, 256, 2).active_macs == 131072
        assert SystolicGeometry(128, 128).active_macs == 16384

    def test_label(self):
        assert SystolicGeometry(512, 256).label == "512x256"
        assert SystolicGeometry(256, 256, 2).label == "256x256x2"

    @pytest.mark.parametrize("h,w,e", [(0, 1, 1), (1, 0, 1), (1, 1, 0), (-4, 4, 1)])
    def test_invalid_geometry_raises(self, h, w, e):
        with pytest.raises(ValueError):
            SystolicGeometry(h, w, e)


class TestTiming:
    def test_single_tile_cycles(self):
        array = SystolicArray(SystolicGeometry(256, 256), clock_hz=1.0)
        timing = array.gemm_timing(256, 1024, 256)
        assert timing.tiles == 1
        assert timing.passes == 1
        assert timing.cycles == 1024 + 512  # K + fill

    def test_tiles_quantize_up(self):
        array = SystolicArray(SystolicGeometry(256, 256), clock_hz=1.0)
        assert array.gemm_timing(257, 128, 256).tiles == 2

    def test_two_engines_halve_passes(self):
        one = SystolicArray(SystolicGeometry(256, 256, 1), 1.0).gemm_timing(1024, 512, 1024)
        two = SystolicArray(SystolicGeometry(256, 256, 2), 1.0).gemm_timing(1024, 512, 1024)
        assert two.passes == one.passes / 2

    def test_time_scales_with_clock(self):
        geo = SystolicGeometry(256, 256)
        slow = SystolicArray(geo, clock_hz=1e9).gemm_time(512, 512, 512)
        fast = SystolicArray(geo, clock_hz=2e9).gemm_time(512, 512, 512)
        assert slow == pytest.approx(2 * fast)

    def test_invalid_dims_raise(self):
        array = SystolicArray(SystolicGeometry(64, 64), 1.0)
        with pytest.raises(ValueError):
            array.gemm_timing(0, 64, 64)


class TestUtilization:
    def test_perfectly_aligned_large_k_near_one(self):
        array = SystolicArray(SystolicGeometry(256, 256, 2), 1.0)
        util = array.utilization(256, 10**6, 512, total_macs=131072)
        assert util == pytest.approx(1.0, abs=0.01)

    def test_partial_tile_wastes_macs(self):
        array = SystolicArray(SystolicGeometry(256, 256), 1.0)
        full = array.utilization(256, 8192, 256, total_macs=65536)
        partial = array.utilization(129, 8192, 256, total_macs=65536)
        assert partial < 0.55 * full

    def test_power_gated_geometry_bounded_by_active_fraction(self):
        array = SystolicArray(SystolicGeometry(128, 128), 1.0)
        util = array.utilization(128, 10**6, 128, total_macs=131072)
        assert util <= 128 * 128 / 131072 + 1e-9


class TestBestGeometry:
    def test_picks_matching_shape(self):
        geometries = [SystolicGeometry(256, 256, 2), SystolicGeometry(1024, 128)]
        geo, _ = best_geometry(geometries, m=1024, k=4096, n=128)
        assert geo.label == "1024x128"

    def test_tie_breaks_toward_fewer_macs(self):
        geometries = [SystolicGeometry(256, 256, 2), SystolicGeometry(64, 64)]
        # Tiny GEMM: both do one pass over K, same cycles modulo fill;
        # the smaller fill actually wins here, but for an exact tie the
        # gated config must be preferred.
        geo, _ = best_geometry([SystolicGeometry(64, 64), SystolicGeometry(64, 64, 2)], 32, 128, 32)
        assert geo.engines == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            best_geometry([], 1, 1, 1)


class TestBlockedTraffic:
    def test_small_gemm_reads_operands_once(self):
        # Everything fits through SRAM: A + B read once, C written once.
        traffic = blocked_gemm_traffic(1024, 1024, 1024, 2, sram_bytes=48 << 20)
        assert traffic == pytest.approx(2 * 3 * 1024 * 1024)

    def test_huge_gemm_rereads_operands(self):
        small_sram = blocked_gemm_traffic(65536, 1024, 65536, 2, sram_bytes=1 << 20)
        big_sram = blocked_gemm_traffic(65536, 1024, 65536, 2, sram_bytes=48 << 20)
        assert small_sram > big_sram

    def test_monotone_in_dimensions(self):
        base = blocked_gemm_traffic(1024, 1024, 1024, 2, 48 << 20)
        bigger = blocked_gemm_traffic(2048, 1024, 1024, 2, 48 << 20)
        assert bigger > base
