"""Interconnect topologies (P2P mesh vs NVSwitch)."""

import pytest

from repro.comm.topology import P2PMeshTopology, SwitchTopology


class TestP2PMesh:
    def test_pair_bandwidth_is_three_links(self):
        mesh = P2PMeshTopology()
        assert mesh.pair_bandwidth(8) == pytest.approx(3 * 12.5e9)

    def test_injection_scales_with_participants(self):
        """The root cause of Figure 10's linear decline."""
        mesh = P2PMeshTopology()
        assert mesh.injection_bandwidth(2) == pytest.approx(1 * 37.5e9)
        assert mesh.injection_bandwidth(8) == pytest.approx(7 * 37.5e9)

    def test_full_mesh_uses_21_ports_worth(self):
        mesh = P2PMeshTopology()
        # 7 peers x 3 links = 21 of the 24 RoCE ports.
        assert mesh.injection_bandwidth(8) == pytest.approx(21 * 12.5e9)

    def test_participant_validation(self):
        mesh = P2PMeshTopology()
        with pytest.raises(ValueError):
            mesh.injection_bandwidth(1)
        with pytest.raises(ValueError):
            mesh.injection_bandwidth(9)

    def test_from_spec(self):
        mesh = P2PMeshTopology.from_spec()
        assert mesh.links_per_pair == 3


class TestSwitch:
    def test_injection_independent_of_participants(self):
        switch = SwitchTopology()
        assert switch.injection_bandwidth(2) == switch.injection_bandwidth(8) == 300e9

    def test_pair_can_burst_full_bandwidth(self):
        switch = SwitchTopology()
        assert switch.pair_bandwidth(2) == 300e9

    def test_participant_validation(self):
        with pytest.raises(ValueError):
            SwitchTopology().injection_bandwidth(1)

    def test_switch_beats_mesh_at_two_devices(self):
        assert (
            SwitchTopology().injection_bandwidth(2)
            > P2PMeshTopology().injection_bandwidth(2)
        )
