"""Live paper-vs-measured markdown report."""


from repro.figures.report_md import (
    TRACKED_CLAIMS,
    TrackedClaim,
    all_claims_in_band,
    collect_measurements,
    experiments_markdown,
)


class TestTrackedClaims:
    def test_every_claim_names_a_real_summary_key(self):
        measured = collect_measurements(fast=True)
        assert len(measured) == len(TRACKED_CLAIMS)

    def test_all_claims_in_band_fast(self):
        """The EXPERIMENTS.md calibration must hold on every run."""
        assert all_claims_in_band(fast=True)

    def test_band_check(self):
        claim = TrackedClaim("x", "y", "d", 1.0, (0.5, 1.5))
        assert claim.check(1.0)
        assert not claim.check(2.0)

    def test_claims_cover_every_evaluation_figure(self):
        covered = {claim.figure_id for claim in TRACKED_CLAIMS}
        assert covered >= {
            "fig04", "fig05", "fig07", "fig08", "fig09", "fig10",
            "fig11", "fig12", "fig13", "fig15", "fig17",
        }


class TestMarkdown:
    def test_renders_table(self):
        text = experiments_markdown(fast=True)
        assert text.startswith("# Paper vs measured")
        assert "| Figure |" in text
        assert text.count("|") > 5 * len(TRACKED_CLAIMS)

    def test_no_out_of_band_rows(self):
        assert "**NO**" not in experiments_markdown(fast=True)
