"""Vector-engine throughput accounting."""

import pytest

from repro.hw.spec import A100_SPEC, GAUDI2_SPEC, DType
from repro.hw.vector_unit import VectorUnitModel


@pytest.fixture(scope="module")
def tpc():
    return VectorUnitModel(GAUDI2_SPEC.vector)


@pytest.fixture(scope="module")
def simd():
    return VectorUnitModel(A100_SPEC.vector)


class TestPeaks:
    def test_full_chip_peaks(self, tpc, simd):
        assert tpc.peak_flops() == pytest.approx(11e12)
        assert simd.peak_flops() == pytest.approx(39e12)

    def test_per_core_scaling(self, tpc):
        assert tpc.peak_flops(num_cores=12) == pytest.approx(5.5e12)

    def test_invalid_core_count_raises(self, tpc):
        with pytest.raises(ValueError):
            tpc.peak_flops(num_cores=25)
        with pytest.raises(ValueError):
            tpc.peak_flops(num_cores=0)


class TestFmaAccounting:
    def test_non_fma_kernels_reach_half_peak(self, tpc):
        """The 50 % saturation of ADD/SCALE in Figure 8(d, e)."""
        assert tpc.sustained_flops(uses_fma=False).fraction_of_peak == 0.5

    def test_fma_kernels_reach_full_peak(self, tpc):
        """TRIAD's ~99 % saturation in Figure 8(f)."""
        assert tpc.sustained_flops(uses_fma=True).fraction_of_peak == 1.0

    def test_same_split_on_a100(self, simd):
        assert simd.sustained_flops(uses_fma=False).flops == pytest.approx(19.5e12)
        assert simd.sustained_flops(uses_fma=True).flops == pytest.approx(39e12)

    def test_vector_gap_is_3_5x(self, tpc, simd):
        """Table 1: A100 has ~3.5x the vector math throughput."""
        assert simd.peak_flops() / tpc.peak_flops() == pytest.approx(3.5, abs=0.1)


class TestElementwiseTime:
    def test_zero_work_is_free(self, tpc):
        assert tpc.elementwise_time(0, 1.0) == 0.0
        assert tpc.elementwise_time(100, 0.0) == 0.0

    def test_linear_in_elements(self, tpc):
        one = tpc.elementwise_time(10**6, 2.0)
        two = tpc.elementwise_time(2 * 10**6, 2.0)
        assert two == pytest.approx(2 * one)

    def test_negative_raises(self, tpc):
        with pytest.raises(ValueError):
            tpc.elementwise_time(-1, 1.0)

    def test_fp32_half_rate(self, tpc):
        bf16 = tpc.elementwise_time(10**6, 1.0, DType.BF16)
        fp32 = tpc.elementwise_time(10**6, 1.0, DType.FP32)
        assert fp32 == pytest.approx(2 * bf16)
