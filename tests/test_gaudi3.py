"""Gaudi-3 projection (footnote 1 extension)."""

import pytest

from repro.hw.device import get_device
from repro.hw.gaudi3 import GAUDI3_SPEC, Gaudi3Device
from repro.hw.spec import DType, GAUDI2_SPEC
from repro.models.llama import LLAMA_3_1_8B, LlamaCostModel


class TestSpecScaling:
    def test_announced_peaks(self):
        assert GAUDI3_SPEC.matrix.peak(DType.BF16) == pytest.approx(1835e12)
        assert GAUDI3_SPEC.memory.bandwidth == pytest.approx(3.7e12)
        assert GAUDI3_SPEC.memory.capacity_bytes == 128 * 1024**3
        assert GAUDI3_SPEC.power.tdp_watts == 900.0

    def test_64_tpcs(self):
        assert GAUDI3_SPEC.vector.num_cores == 64
        ratio = GAUDI3_SPEC.vector.peak(DType.BF16) / GAUDI2_SPEC.vector.peak(DType.BF16)
        assert ratio == pytest.approx(64 / 24)

    def test_architecture_carries_over(self):
        """Footnote 1: 'virtually identical' architecture."""
        assert GAUDI3_SPEC.memory.min_access_bytes == 256
        assert GAUDI3_SPEC.interconnect.kind == "p2p-mesh"
        assert not GAUDI3_SPEC.memory.sram_is_cache
        assert GAUDI3_SPEC.matrix.configurable

    def test_200gbe_links(self):
        assert GAUDI3_SPEC.interconnect.link_bandwidth == pytest.approx(25e9)


class TestDevice:
    def test_factory_alias(self):
        device = get_device("gaudi3")
        assert isinstance(device, Gaudi3Device)
        assert device.name == "Gaudi-3"

    def test_big_gemm_near_peak(self):
        device = Gaudi3Device()
        result = device.gemm(16384, 16384, 16384)
        assert result.achieved_flops / 1e12 == pytest.approx(1825, rel=0.02)

    def test_faster_than_gaudi2_everywhere(self):
        g2, g3 = get_device("gaudi2"), get_device("gaudi3")
        for shape in [(512, 512, 512), (8192, 8192, 8192), (8192, 8192, 16)]:
            assert g3.gemm(*shape).time < g2.gemm(*shape).time

    def test_llm_serving_projection(self):
        """The projection the paper's footnote implies: a larger win."""
        g2, g3, a100 = get_device("gaudi2"), get_device("gaudi3"), get_device("a100")
        ea = LlamaCostModel(LLAMA_3_1_8B, a100).generate(32, 100, 100)
        e2 = LlamaCostModel(LLAMA_3_1_8B, g2).generate(32, 100, 100)
        e3 = LlamaCostModel(LLAMA_3_1_8B, g3).generate(32, 100, 100)
        assert ea.total_time / e3.total_time > ea.total_time / e2.total_time
        assert ea.total_time / e3.total_time > 1.8

    def test_power_stays_within_tdp(self):
        g3 = get_device("gaudi3")
        estimate = LlamaCostModel(LLAMA_3_1_8B, g3).generate(64, 100, 100)
        assert estimate.average_power <= 900.0
