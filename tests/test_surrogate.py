"""Surrogate cost models: fitting, artifacts, backend facade, audit.

The contract under test (ISSUE 10): every fitted surface carries a
held-out validation certificate within its tolerance; artifacts are
checksummed and byte-identical across save/load; fitting is
bit-identical across runs and across the serial/process-pool paths;
the ``@surrogate`` backend facade serves in-domain queries from the
fit and falls back to the exact model elsewhere; and the audit layer's
``SurrogateEquivalence`` spot check catches a corrupted predictor.
"""

import json

import pytest

from repro.audit import audit_scope
from repro.audit.errors import ConfigError, SurrogateEquivalenceError
from repro.core.journal import canonical_json
from repro.hw.backend import get_backend, list_backends, resolve_backend
from repro.hw.spec import DType, get_spec
from repro.surrogate import (
    SURROGATE_COUNTERS,
    artifact_path,
    fit_backend,
    get_surrogate_model,
    load_model,
    render_counters,
    save_model,
    set_surrogate_model,
    surface_names,
    validate_model,
)
from repro.surrogate.fitting import SurrogateModel


@pytest.fixture(scope="module")
def model():
    return get_surrogate_model("gaudi2")


class TestCertificates:
    def test_every_surface_certified(self, model):
        assert set(model.surfaces) == set(surface_names())
        for name in model.surfaces:
            certificate = model.certificate(name)
            assert certificate["holdout"] > 0
            assert 0.0 <= certificate["mean_rel_err"] <= certificate["max_rel_err"]
            assert certificate["max_rel_err"] <= model.tolerance(name)

    def test_structural_surfaces_are_tight(self, model):
        # The GEMM/attention fits recover the exact basis functions, so
        # they certify far below the tabulated surfaces' tolerance.
        assert model.certificate("gemm")["max_rel_err"] < 1e-3
        assert model.certificate("attention")["max_rel_err"] < 1e-3

    def test_validate_model_fresh_samples(self, model):
        report = validate_model(model, seed=7, points=8)
        assert set(report) == set(model.surfaces)
        assert all(entry["ok"] for entry in report.values())

    def test_tolerance_breach_refuses_to_load(self, model):
        payload = json.loads(canonical_json(model.to_payload()))
        payload["surfaces"]["gemm"]["certificate"]["max_rel_err"] = 0.5
        with pytest.raises(ConfigError, match="refusing to load"):
            SurrogateModel.from_payload(payload)

    def test_schema_mismatch_rejected(self, model):
        payload = json.loads(canonical_json(model.to_payload()))
        payload["schema"] = "repro-surrogate/v0"
        with pytest.raises(ConfigError, match="schema"):
            SurrogateModel.from_payload(payload)


class TestDeterminism:
    def test_fit_is_bit_identical_across_runs(self):
        first = fit_backend("gaudi2")
        second = fit_backend("gaudi2")
        assert canonical_json(first.to_payload()) == canonical_json(second.to_payload())

    def test_parallel_fit_matches_serial(self):
        serial = fit_backend("gaudi2")
        parallel = fit_backend("gaudi2", workers=2)
        assert canonical_json(serial.to_payload()) == canonical_json(parallel.to_payload())

    def test_seed_changes_holdout_not_fit(self):
        base = fit_backend("gaudi2", surfaces=["tpc_stream"])
        other = fit_backend("gaudi2", seed=3, surfaces=["tpc_stream"])
        assert (base.surfaces["tpc_stream"]["predictor"]
                == other.surfaces["tpc_stream"]["predictor"])
        assert base.certificate("tpc_stream")["seed"] == 0
        assert other.certificate("tpc_stream")["seed"] == 3


class TestArtifacts:
    def test_save_load_save_byte_identical(self, model, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        save_model(model, first)
        save_model(load_model(first), second)
        assert first.read_bytes() == second.read_bytes()

    def test_loaded_model_predicts_identically(self, model, tmp_path):
        path = save_model(model, tmp_path / "m.json")
        loaded = load_model(path)
        assert float(loaded.gemm_predict(1024, 4096, 4096, 1)["time"]) \
            == float(model.gemm_predict(1024, 4096, 4096, 1)["time"])

    def test_checksum_tamper_rejected(self, model, tmp_path):
        path = save_model(model, tmp_path / "m.json")
        record = json.loads(path.read_text())
        record["payload"]["surfaces"]["gemm"]["tolerance"] = 0.99
        path.write_text(json.dumps(record))
        with pytest.raises(ConfigError, match="checksum"):
            load_model(path)

    def test_missing_artifact_typed_error(self, tmp_path):
        with pytest.raises(ConfigError, match="repro surrogate fit"):
            load_model(tmp_path / "absent.json")

    def test_garbage_artifact_typed_error(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"payload": {"schema"')
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_model(path)

    def test_artifact_path_layout(self):
        assert artifact_path("gaudi2").name == "gaudi2@surrogate.json"
        assert artifact_path("a100", "/tmp/x").parent.as_posix() == "/tmp/x"


class TestBackendFacade:
    def test_registry_resolution_is_lazy(self):
        key = resolve_backend("gaudi2@surrogate")
        assert key == "gaudi2@surrogate"
        assert key in list_backends()
        assert get_spec(key) is get_backend("gaudi2").spec

    def test_in_domain_gemm_matches_model(self, model):
        device = get_backend("gaudi2@surrogate")
        result = device.gemm(512, 4096, 4096)
        assert result.time == pytest.approx(
            float(model.gemm_predict(512, 4096, 4096, 1)["time"]), rel=1e-12
        )
        assert result.config_label.startswith("MME")

    def test_fp32_falls_back_to_exact(self):
        before = SURROGATE_COUNTERS["gemm.fallback"]
        device = get_backend("gaudi2@surrogate", fresh=True)
        exact = get_backend("gaudi2").gemm(1024, 1024, 1024, DType.FP32)
        result = device.gemm(1024, 1024, 1024, DType.FP32)
        assert result.time == exact.time
        assert SURROGATE_COUNTERS["gemm.fallback"] > before

    def test_out_of_domain_shape_falls_back(self):
        before = SURROGATE_COUNTERS["gemm.fallback"]
        device = get_backend("gaudi2@surrogate", fresh=True)
        exact = get_backend("gaudi2").gemm(32768, 1024, 1024)
        assert device.gemm(32768, 1024, 1024).time == exact.time
        assert SURROGATE_COUNTERS["gemm.fallback"] > before

    def test_collectives_served_from_tables(self, model):
        from repro.comm.collectives import CollectiveOp

        device = get_backend("gaudi2@surrogate")
        library = device.collective_library(8)
        report = library.run(CollectiveOp.ALL_REDUCE, 2**20, 8)
        assert report.time == pytest.approx(
            float(model.collective_time("all_reduce", float(2**20), 8)), rel=1e-12
        )
        assert report.bus_bandwidth > 0

    def test_off_lattice_participants_fall_back(self):
        from repro.comm.collectives import CollectiveOp

        device = get_backend("gaudi2@surrogate")
        exact = get_backend("gaudi2").collective_library(8)
        library = device.collective_library(8)
        before = SURROGATE_COUNTERS["collective.fallback"]
        report = library.run(CollectiveOp.ALL_REDUCE, 2**20, 3)
        assert report.time == exact.run(CollectiveOp.ALL_REDUCE, 2**20, 3).time
        assert SURROGATE_COUNTERS["collective.fallback"] > before

    def test_degraded_fabric_is_priced_exactly(self):
        device = get_backend("gaudi2@surrogate")
        library = device.collective_library(8)
        rebound = library.with_topology(library.topology)
        assert type(rebound).__name__ != "SurrogateCollectiveLibrary"

    def test_partial_fabric_is_exact(self):
        device = get_backend("gaudi2@surrogate")
        assert type(device.collective_library(4)).__name__ \
            != "SurrogateCollectiveLibrary"


class TestAuditSpotCheck:
    def test_spot_check_passes_on_healthy_model(self):
        with audit_scope("strict", sample_fraction=1.0) as auditor:
            device = get_backend("gaudi2@surrogate", fresh=True)
            device.gemm(640, 2048, 2048)
            assert auditor.surrogate_verified > 0
            assert auditor.total_violations == 0

    def test_corrupted_predictor_raises_strict(self, model):
        payload = json.loads(canonical_json(model.to_payload()))
        for piece in payload["surfaces"]["gemm"]["predictor"]["pieces"]:
            piece["alpha"] *= 3.0  # certificate left untouched: runtime
            # spot-checking, not load-time enforcement, must catch this.
        corrupted = SurrogateModel.from_payload(payload)
        set_surrogate_model("gaudi2", corrupted)
        try:
            with audit_scope("strict", sample_fraction=1.0):
                device = get_backend("gaudi2@surrogate", fresh=True)
                with pytest.raises(SurrogateEquivalenceError):
                    device.gemm(4096, 4096, 4096)
        finally:
            set_surrogate_model("gaudi2", model)

    def test_sample_mode_counts_instead_of_raising(self, model):
        payload = json.loads(canonical_json(model.to_payload()))
        for piece in payload["surfaces"]["gemm"]["predictor"]["pieces"]:
            piece["alpha"] *= 3.0
        set_surrogate_model("gaudi2", SurrogateModel.from_payload(payload))
        try:
            with audit_scope("sample", sample_fraction=1.0) as auditor:
                device = get_backend("gaudi2@surrogate", fresh=True)
                device.gemm(4096, 4096, 4096)
                assert auditor.violation_counts[SurrogateEquivalenceError.check] > 0
        finally:
            set_surrogate_model("gaudi2", model)


class TestSweepAndRendering:
    def test_design_space_matches_exact_twin(self):
        from repro.surrogate.sweep import design_space_sweep

        fast = design_space_sweep("gaudi2", fast=True)
        exact = design_space_sweep("gaudi2", fast=True, exact=True)
        assert fast["cells"] == exact["cells"]
        best = fast["best"]
        assert (best["tp"], best["batch"], best["context"]) == (
            exact["best"]["tp"], exact["best"]["batch"], exact["best"]["context"]
        )
        for s_row, e_row in zip(fast["rows"], exact["rows"]):
            assert s_row["step_time"] == pytest.approx(e_row["step_time"], rel=0.05)
            assert s_row["ttft"] == pytest.approx(e_row["ttft"], rel=0.05)

    def test_gemm_grid_sweep_totals_agree(self):
        from repro.surrogate.sweep import gemm_grid_sweep

        surrogate = gemm_grid_sweep("gaudi2", lo=64, hi=2048, per_octave=4)
        exact = gemm_grid_sweep("gaudi2", lo=64, hi=2048, per_octave=4, exact=True)
        assert surrogate["points"] == exact["points"]
        assert surrogate["total_time"] == pytest.approx(exact["total_time"], rel=0.02)

    def test_design_space_figure_registered(self):
        from repro.figures import run_figure

        result = run_figure(figure_id="design_space", fast=True)
        assert result.summary["cells"] == len(result.rows) > 0
        assert "Tok/s" in result.text

    def test_render_counters_lists_certificates(self, model):
        set_surrogate_model("gaudi2", model)
        text = render_counters()
        assert "gaudi2@surrogate:" in text
        assert "max err" in text
        assert "spot checks" in text


class TestCli:
    def test_fit_validate_sweep_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path)
        assert main(["surrogate", "fit", "--backend", "gaudi2",
                     "--out", out]) == 0
        assert (tmp_path / "gaudi2@surrogate.json").exists()
        assert main(["surrogate", "validate", "--backend", "gaudi2",
                     "--out", out, "--spot", "4"]) == 0
        assert main(["surrogate", "sweep", "--backend", "gaudi2"]) == 0
        captured = capsys.readouterr().out
        assert "every surface within tolerance" in captured
        assert "best cell" in captured

    def test_validate_missing_artifact_fails(self, tmp_path):
        from repro.cli import main

        with pytest.raises(ConfigError, match="repro surrogate fit"):
            main(["surrogate", "validate", "--backend", "gaudi2",
                  "--out", str(tmp_path / "empty")])

    def test_top_renders_surrogate_section(self, capsys):
        from repro.cli import main

        assert main(["top", "--backend", "gaudi2@surrogate", "--tp", "1",
                     "--requests", "4", "--samples", "2"]) == 0
        captured = capsys.readouterr().out
        assert "Surrogate cost models:" in captured
        assert "gaudi2@surrogate:" in captured
        assert "fast path" in captured
