"""Fleet-level resilience: nodes, gateway, chaos, autoscaling, reports."""

import json
import math

import pytest

from repro.audit import ConfigError, JournalError, audit_scope
from repro.cluster import (
    AutoscalePolicy,
    FleetConfig,
    Gateway,
    Node,
    NodeClass,
    NodeFaultKind,
    NodeFaultPlan,
    NodeState,
    FleetResilienceReport,
    resume_fleet,
    run_fleet,
)
from repro.faults import GATEWAY_SHED_PREFIX, shed_reason_counts
from repro.serving.dataset import fixed_length_requests
from repro.serving.engine import LlmServingEngine
from repro.serving.loadgen import diurnal_arrivals, poisson_arrivals
from repro.serving.request import Request, RequestState, RetryPolicy


def _build_engine(**kwargs):
    from repro.hw.device import Gaudi2Device
    from repro.models.llama import LLAMA_3_1_8B, DecodeAttention, LlamaCostModel

    return LlmServingEngine(
        LlamaCostModel(LLAMA_3_1_8B, Gaudi2Device()),
        DecodeAttention.PAGED_OPT,
        **kwargs,
    )


class TestRetryPolicyJitter:
    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_multiplier=2.0, jitter=0.0)
        assert policy.backoff(0) == 0.5
        assert policy.backoff(1) == 1.0
        assert policy.backoff(2) == 2.0

    def test_jitter_is_deterministic_per_token_and_attempt(self):
        policy = RetryPolicy(jitter=0.5, seed=3)
        assert policy.backoff(1, token=7) == policy.backoff(1, token=7)
        assert policy.backoff(1, token=7) != policy.backoff(1, token=8)
        assert policy.backoff(1, token=7) != policy.backoff(2, token=7)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_multiplier=1.0, jitter=0.25)
        for token in range(50):
            delay = policy.backoff(0, token=token)
            assert 0.75 <= delay <= 1.25

    def test_max_backoff_caps_before_jitter(self):
        policy = RetryPolicy(
            backoff_base=1.0, backoff_multiplier=10.0, jitter=0.0, max_backoff=3.0
        )
        assert policy.backoff(5) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_backoff=-1.0)


class TestEngineStreamingApi:
    def test_streaming_matches_batch_run(self):
        requests = fixed_length_requests(8, input_len=128, output_len=32)
        batch = _build_engine().run(
            fixed_length_requests(8, input_len=128, output_len=32)
        )
        engine = _build_engine()
        engine.begin()
        for request in requests:
            engine.feed(request)
        while engine.has_unfinished:
            engine.advance(engine.now + 0.05)
        streamed = engine.finish()
        assert streamed.to_dict() == batch.to_dict()

    def test_advance_does_not_jump_past_idle_horizon(self):
        engine = _build_engine()
        engine.begin()
        request = fixed_length_requests(1, input_len=64, output_len=8)[0]
        request.arrival_time = 5.0
        engine.feed(request)
        assert engine.advance(1.0) <= 1.0
        engine.advance(math.inf)
        report = engine.finish()
        assert report.finished_requests == 1


class TestNodeFaultPlan:
    def test_from_spec_round_trip(self):
        plan = NodeFaultPlan.from_spec(
            "crash:gaudi2-1@t=2,recover=6;"
            "brownout:a100-0@t=1,factor=0.5,until=4;"
            "fabric:gaudi2-0@t=3,factor=0.25,until=5;"
            "blip:gaudi2-2@t=2.5,duration=1"
        )
        kinds = [event.kind for event in plan.scheduled()]
        assert kinds == [
            NodeFaultKind.BROWNOUT,
            NodeFaultKind.NODE_CRASH,
            NodeFaultKind.BLIP,
            NodeFaultKind.FABRIC_DEGRADE,
            NodeFaultKind.BLIP_CLEAR,
            NodeFaultKind.BROWNOUT_CLEAR,
            NodeFaultKind.FABRIC_RESTORE,
            NodeFaultKind.NODE_RECOVER,
        ]
        rebuilt = NodeFaultPlan.from_dict(plan.to_dict())
        assert rebuilt.to_dict() == plan.to_dict()

    def test_bad_specs_rejected(self):
        with pytest.raises(ConfigError):
            NodeFaultPlan.from_spec("explode:n0@t=1")
        with pytest.raises(ConfigError):
            NodeFaultPlan.from_spec("crash:n0@recover=6")
        with pytest.raises(ConfigError):
            NodeFaultPlan().crash("n0", at=5.0, recover_at=2.0)
        with pytest.raises(ConfigError):
            NodeFaultPlan().brownout("n0", 1.5, at=1.0)


class TestNodeHealth:
    def _node(self):
        return Node("n0", NodeClass(name="gaudi2", device="gaudi2", tp=2))

    def test_state_machine_priorities(self):
        node = self._node()
        assert node.state is NodeState.HEALTHY and node.routable
        node.set_brownout(0.5)
        assert node.state is NodeState.DEGRADED and node.routable
        node.set_blip(True)
        assert node.state is NodeState.UNAVAILABLE and not node.routable
        node.crash()
        assert node.state is NodeState.DEAD
        node.begin_recovery()
        assert node.state is NodeState.RECOVERING and not node.routable
        node.warm()
        node.set_blip(False)
        node.clear_brownout()
        assert node.state is NodeState.HEALTHY

    def test_fabric_degradation_marks_degraded(self):
        node = self._node()
        node.degrade_fabric(0.5)
        assert node.state is NodeState.DEGRADED
        node.restore_fabric()
        assert node.state is NodeState.HEALTHY

    def test_crash_fails_inflight_attempts(self):
        node = self._node()
        node.begin()
        request = Request(
            request_id=0, input_tokens=64, output_tokens=16, arrival_time=0.0
        )
        node.feed(request)
        victims = node.crash()
        assert victims == [request]
        assert request.state is RequestState.FAILED
        assert node.inflight == []


class TestGatewayRouting:
    def _gateway(self, policy, n=3):
        gateway = Gateway(policy)
        for i in range(n):
            gateway.register(
                Node(f"n{i}", NodeClass(name="gaudi2", device="gaudi2", tp=2))
            )
        return gateway

    def test_round_robin_cycles(self):
        gateway = self._gateway("round-robin")
        names = [gateway.pick().name for _ in range(6)]
        assert names == ["n0", "n1", "n2", "n0", "n1", "n2"]

    def test_least_loaded_prefers_empty_node(self):
        gateway = self._gateway("least-loaded")
        gateway.nodes["n0"].inflight = [object(), object()]
        gateway.nodes["n1"].inflight = [object()]
        assert gateway.pick().name == "n2"

    def test_latency_aware_prefers_fast_node(self):
        gateway = self._gateway("latency-aware")
        gateway.nodes["n0"].latency_estimate = 0.5
        gateway.nodes["n1"].latency_estimate = 0.1
        gateway.nodes["n2"].latency_estimate = 0.9
        assert gateway.pick().name == "n1"

    def test_exclude_falls_back_when_all_tried(self):
        gateway = self._gateway("round-robin", n=1)
        assert gateway.pick(exclude={"n0"}).name == "n0"

    def test_unroutable_nodes_skipped(self):
        gateway = self._gateway("round-robin")
        gateway.nodes["n1"].crash()
        names = {gateway.pick().name for _ in range(4)}
        assert "n1" not in names

    def test_no_routable_node_returns_none(self):
        gateway = self._gateway("round-robin", n=1)
        gateway.nodes["n0"].crash()
        assert gateway.pick() is None

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            Gateway("random")


class TestShedReasonScoping:
    def test_gateway_vs_engine_split(self):
        requests = fixed_length_requests(3, input_len=64, output_len=8)
        requests[0].shed(f"{GATEWAY_SHED_PREFIX}timeout: too slow")
        requests[1].shed("kv-exhausted: no blocks")
        counts = shed_reason_counts(requests)
        assert counts == {f"{GATEWAY_SHED_PREFIX}timeout": 1, "kv-exhausted": 1}
        assert shed_reason_counts(requests, scope="gateway") == {
            f"{GATEWAY_SHED_PREFIX}timeout": 1
        }
        assert shed_reason_counts(requests, scope="engine") == {"kv-exhausted": 1}


class TestDiurnalArrivals:
    def test_monotone_and_deterministic(self):
        a = diurnal_arrivals(
            fixed_length_requests(32, input_len=64, output_len=8),
            rate=8.0, period=10.0, seed=3,
        )
        b = diurnal_arrivals(
            fixed_length_requests(32, input_len=64, output_len=8),
            rate=8.0, period=10.0, seed=3,
        )
        times = [r.arrival_time for r in a]
        assert times == [r.arrival_time for r in b]
        assert times == sorted(times)
        assert times[0] > 0.0

    def test_differs_from_poisson(self):
        diurnal = diurnal_arrivals(
            fixed_length_requests(32, input_len=64, output_len=8),
            rate=8.0, seed=0,
        )
        poisson = poisson_arrivals(
            fixed_length_requests(32, input_len=64, output_len=8),
            rate=8.0, seed=0,
        )
        assert [r.arrival_time for r in diurnal] != [r.arrival_time for r in poisson]

    def test_validation(self):
        requests = fixed_length_requests(2, input_len=64, output_len=8)
        with pytest.raises(ValueError):
            diurnal_arrivals(requests, rate=0.0)
        with pytest.raises(ValueError):
            diurnal_arrivals(requests, rate=1.0, amplitude=1.0)


def _small_config(**overrides):
    defaults = dict(
        nodes=(("gaudi2", 2),),
        tp=2,
        num_requests=24,
        rate=8.0,
        seed=3,
        timeout=20.0,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestFleetRuns:
    def test_kill_a_node_golden(self):
        """Mid-run node kill: every admitted request is still accounted
        for, the in-flight attempts fail over, and the run audits clean
        under strict mode."""
        plan = NodeFaultPlan().crash("gaudi2-0", at=1.0, recover_at=4.0)
        with audit_scope("strict"):
            report = run_fleet(_small_config(plan=plan))
        assert report.admitted == 24
        assert report.finished + report.shed + report.unfinished == 24
        assert report.unfinished == 0
        assert report.node_crashes == 1
        assert report.failovers >= 1
        assert report.attempt_failed >= 1
        crashed = next(n for n in report.node_reports if n.name == "gaudi2-0")
        assert crashed.crashes == 1
        assert crashed.final_state == "healthy"  # recovered by end of run
        assert report.fault_log == (
            "t=1 node_crash gaudi2-0",
            "t=4 node_recover gaudi2-0",
        )

    def test_same_seed_byte_identical_under_chaos(self):
        plan = NodeFaultPlan.from_spec(
            "crash:gaudi2-1@t=1,recover=4;brownout:gaudi2-0@t=2,factor=0.5,until=5"
        )
        config = _small_config(plan=plan, policy="least-loaded")
        first = run_fleet(config)
        second = run_fleet(config)
        assert first.to_payload() == second.to_payload()
        assert first.to_json() == second.to_json()
        assert first.render() == second.render()

    def test_different_seeds_differ(self):
        a = run_fleet(_small_config(seed=1))
        b = run_fleet(_small_config(seed=2))
        assert a.to_payload() != b.to_payload()

    def test_policy_changes_routing(self):
        rr = run_fleet(_small_config(policy="round-robin"))
        ll = run_fleet(_small_config(policy="least-loaded"))
        assert rr.finished == ll.finished == 24
        assert rr.policy == "round-robin" and ll.policy == "least-loaded"

    def test_all_nodes_dead_sheds_with_gateway_reason(self):
        plan = NodeFaultPlan().crash("gaudi2-0", at=0.0).crash("gaudi2-1", at=0.0)
        config = _small_config(
            plan=plan,
            retry=RetryPolicy(max_retries=1, backoff_base=0.1, jitter=0.0),
        )
        with audit_scope("strict"):
            report = run_fleet(config)
        assert report.finished == 0
        assert report.shed == 24
        assert report.unfinished == 0
        reasons = dict(report.shed_reasons_gateway)
        assert f"{GATEWAY_SHED_PREFIX}no-healthy-node" in reasons
        assert sum(reasons.values()) == 24

    def test_tight_timeout_triggers_retries(self):
        config = _small_config(
            nodes=(("gaudi2", 1),),
            num_requests=32,
            rate=32.0,
            timeout=0.05,
            retry=RetryPolicy(max_retries=2, backoff_base=0.05, jitter=0.0),
        )
        with audit_scope("strict"):
            report = run_fleet(config)
        assert report.timeouts > 0
        assert report.attempt_shed_gateway > 0
        assert report.finished + report.shed == 32
        assert dict(report.shed_reasons_engine) == {}

    def test_hedging_races_a_second_node(self):
        config = _small_config(
            num_requests=32, rate=32.0, hedge_after=0.02, timeout=None
        )
        with audit_scope("strict"):
            report = run_fleet(config)
        assert report.hedges > 0
        assert report.finished == 32
        # A hedge either wins (original cancelled) or loses (wasted).
        assert report.attempt_shed_gateway + report.hedge_wasted >= report.hedges

    def test_autoscaler_scales_up_under_slo_breach(self):
        auto = AutoscalePolicy(
            target_p99_ttft=0.02,
            evaluate_interval=0.5,
            cooldown=1.0,
            max_nodes=3,
            provision_delay=0.25,
        )
        config = _small_config(
            nodes=(("gaudi2", 1),),
            num_requests=64,
            rate=48.0,
            autoscale=auto,
            timeout=None,
        )
        with audit_scope("strict"):
            report = run_fleet(config)
        assert report.scale_ups > 0
        assert len(report.node_reports) == 1 + report.scale_ups
        assert report.autoscale_log
        assert report.finished == 64

    def test_heterogeneous_pools_route_to_both_devices(self):
        config = _small_config(nodes=(("gaudi2", 1), ("a100", 1)), num_requests=32)
        report = run_fleet(config)
        devices = {n.device for n in report.node_reports}
        assert devices == {"Gaudi-2", "A100"}
        assert all(n.attempts > 0 for n in report.node_reports)

    def test_unknown_fault_target_rejected(self):
        plan = NodeFaultPlan().crash("gaudi2-9", at=1.0)
        with pytest.raises(ConfigError):
            run_fleet(_small_config(plan=plan))

    def test_config_round_trip(self):
        plan = NodeFaultPlan().crash("gaudi2-0", at=1.0, recover_at=2.0)
        config = _small_config(
            plan=plan,
            autoscale=AutoscalePolicy(),
            retry=RetryPolicy(jitter=0.25, max_backoff=4.0),
            hedge_after=1.0,
            diurnal=True,
        )
        rebuilt = FleetConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert rebuilt.to_dict() == config.to_dict()
        assert rebuilt == config

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            FleetConfig(nodes=())
        with pytest.raises(ConfigError):
            FleetConfig(nodes=(("gaudi2", 0),))
        with pytest.raises(ConfigError):
            FleetConfig(policy="random")
        with pytest.raises(ConfigError):
            FleetConfig(timeout=-1.0)


class TestFleetJournal:
    def test_resume_is_byte_identical(self, tmp_path):
        plan = NodeFaultPlan().crash("gaudi2-0", at=1.0, recover_at=3.0)
        config = _small_config(plan=plan)
        original = run_fleet(config, journal=tmp_path)
        resumed = resume_fleet(tmp_path)
        assert resumed.to_payload() == original.to_payload()
        assert resumed.to_json() == original.to_json()

    def test_journal_records_node_tagged_points(self, tmp_path):
        from repro.core.journal import RunJournal

        run_fleet(_small_config(), journal=tmp_path)
        keys = set(RunJournal(tmp_path).completed_keys())
        assert "fleet" in keys
        assert "node-gaudi2-0" in keys and "node-gaudi2-1" in keys

    def test_resume_rejects_foreign_journal(self, tmp_path):
        from repro.core.journal import RunJournal

        journal = RunJournal(tmp_path)
        journal.write_header({"tool": "load_sweep"})
        with pytest.raises(JournalError):
            resume_fleet(tmp_path)

    def test_resume_rejects_missing_journal(self, tmp_path):
        with pytest.raises(JournalError):
            resume_fleet(tmp_path / "nope")

    def test_header_pins_config(self, tmp_path):
        run_fleet(_small_config(), journal=tmp_path)
        with pytest.raises(JournalError):
            run_fleet(_small_config(seed=99), journal=tmp_path)

    def test_report_payload_round_trip(self):
        report = run_fleet(_small_config())
        rebuilt = FleetResilienceReport.from_payload(
            json.loads(json.dumps(report.to_payload()))
        )
        assert rebuilt.to_payload() == report.to_payload()
        assert rebuilt == report


class TestFleetObservability:
    def test_fleet_run_emits_node_tagged_trace(self):
        from repro.api import RunContext

        ctx = RunContext.create(seed=3)
        plan = NodeFaultPlan().crash("gaudi2-0", at=1.0, recover_at=3.0)
        run_fleet(_small_config(plan=plan), ctx=ctx)
        names = {s.name for s in ctx.tracer.spans}
        assert "attempt" in names
        instants = {e.name for e in ctx.tracer.instants}
        assert "node.node_crash" in instants
        counters = {c.name for c in ctx.tracer.counters}
        assert "fleet.inflight" in counters
        assert json.loads(ctx.chrome_trace())["traceEvents"]

    def test_fleet_run_populates_metrics(self):
        from repro.api import RunContext

        ctx = RunContext.create(seed=3)
        run_fleet(_small_config(), ctx=ctx)
        summary = ctx.metrics_summary()
        assert "fleet.dispatches" in summary
        assert "fleet.ttft" in summary
