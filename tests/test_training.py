"""Training cost model (future-work extension)."""

import pytest

from repro.hw.device import get_device
from repro.models.llama import LLAMA_3_1_8B, LLAMA_3_1_70B
from repro.models.tensor_parallel import TensorParallelConfig
from repro.models.training import LlamaTrainingCostModel


class TestStepStructure:
    def test_backward_costs_twice_forward(self, gaudi):
        model = LlamaTrainingCostModel(LLAMA_3_1_8B, gaudi, data_parallel=8)
        step = model.step(global_batch=64, seq_len=2048)
        assert step.backward_time == pytest.approx(2 * step.forward_time)

    def test_components_positive(self, gaudi):
        step = LlamaTrainingCostModel(LLAMA_3_1_8B, gaudi, data_parallel=8).step(64, 2048)
        assert step.optimizer_time > 0
        assert step.gradient_allreduce_time > 0
        assert step.step_time == pytest.approx(
            step.forward_time + step.backward_time + step.optimizer_time
            + step.gradient_allreduce_time
        )

    def test_single_device_skips_allreduce(self, gaudi):
        step = LlamaTrainingCostModel(LLAMA_3_1_8B, gaudi, data_parallel=1).step(8, 2048)
        assert step.gradient_allreduce_time == 0.0

    def test_mfu_plausible(self, gaudi, a100):
        for device in (gaudi, a100):
            model = LlamaTrainingCostModel(LLAMA_3_1_8B, device, data_parallel=8)
            step = model.step(global_batch=128, seq_len=4096)
            assert 0.4 < step.model_flops_utilization < 1.0

    def test_invalid_args(self, gaudi):
        with pytest.raises(ValueError):
            LlamaTrainingCostModel(LLAMA_3_1_8B, gaudi, data_parallel=0)
        model = LlamaTrainingCostModel(LLAMA_3_1_8B, gaudi, data_parallel=8)
        with pytest.raises(ValueError):
            model.step(global_batch=4, seq_len=2048)


class TestCrossPlatform:
    def test_gaudi_competitive_at_full_node(self, gaudi, a100):
        """The Section 5 claim under test: training at 8 devices, where
        the P2P mesh runs at full strength."""
        g = LlamaTrainingCostModel(LLAMA_3_1_8B, gaudi, data_parallel=8).step(128, 4096)
        a = LlamaTrainingCostModel(LLAMA_3_1_8B, a100, data_parallel=8).step(128, 4096)
        speedup = a.step_time / g.step_time
        assert speedup > 1.0  # compute-bound: the 1.4x matrix peak shows

    def test_energy_per_token_comparison(self, gaudi, a100):
        g = LlamaTrainingCostModel(LLAMA_3_1_8B, gaudi, data_parallel=8).step(128, 4096)
        a = LlamaTrainingCostModel(LLAMA_3_1_8B, a100, data_parallel=8).step(128, 4096)
        assert g.energy_per_token < a.energy_per_token

    def test_tp_reduces_step_time_for_70b(self, gaudi):
        tp8 = LlamaTrainingCostModel(
            LLAMA_3_1_70B, gaudi, data_parallel=1,
            tp=TensorParallelConfig.for_device(gaudi, 8),
        ).step(16, 2048)
        tp2 = LlamaTrainingCostModel(
            LLAMA_3_1_70B, gaudi, data_parallel=1,
            tp=TensorParallelConfig.for_device(gaudi, 2),
        ).step(16, 2048)
        assert tp8.step_time < tp2.step_time

    def test_gaudi3_projection_trains_faster(self):
        g2 = LlamaTrainingCostModel(LLAMA_3_1_8B, get_device("gaudi2"), 8).step(128, 4096)
        g3 = LlamaTrainingCostModel(LLAMA_3_1_8B, get_device("gaudi3"), 8).step(128, 4096)
        assert g3.step_time < 0.5 * g2.step_time
