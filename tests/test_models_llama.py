"""Llama-3.1 cost models (Figures 12, 13)."""

import pytest

from repro.models.llama import (
    LLAMA_3_1_70B,
    LLAMA_3_1_8B,
    DecodeAttention,
    LlamaConfig,
    LlamaCostModel,
)
from repro.models.tensor_parallel import TensorParallelConfig


class TestConfigs:
    def test_table3_values_8b(self):
        cfg = LLAMA_3_1_8B
        assert cfg.num_layers == 32
        assert cfg.q_heads == 32 and cfg.kv_heads == 8
        assert cfg.hidden_size == 4096 and cfg.intermediate_size == 14336
        assert cfg.vocab_size == 128256

    def test_table3_values_70b(self):
        cfg = LLAMA_3_1_70B
        assert cfg.num_layers == 80
        assert cfg.q_heads == 64 and cfg.kv_heads == 8
        assert cfg.hidden_size == 8192 and cfg.intermediate_size == 28672

    def test_parameter_counts_close_to_names(self):
        assert LLAMA_3_1_8B.num_parameters == pytest.approx(8e9, rel=0.08)
        assert LLAMA_3_1_70B.num_parameters == pytest.approx(70e9, rel=0.08)

    def test_head_dim(self):
        assert LLAMA_3_1_8B.head_dim == 128
        assert LLAMA_3_1_70B.head_dim == 128

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            LlamaConfig("bad", 0, 128, 512, 4, 2, 1000)


class TestPhases:
    def test_prefill_scales_with_tokens(self, gaudi):
        model = LlamaCostModel(LLAMA_3_1_8B, gaudi)
        short = model.prefill(1, 128).time
        long = model.prefill(1, 1024).time
        assert long > 4 * short

    def test_decode_step_memory_bound_scaling(self, gaudi):
        """Decode is weights-bound: batch barely changes step time."""
        model = LlamaCostModel(LLAMA_3_1_8B, gaudi)
        b1 = model.decode_step(1, 256).time
        b16 = model.decode_step(16, 256).time
        assert b16 < 2 * b1

    def test_decode_step_grows_with_context(self, gaudi):
        model = LlamaCostModel(LLAMA_3_1_8B, gaudi)
        assert model.decode_step(32, 4096).time > model.decode_step(32, 256).time

    def test_per_request_context_lengths(self, gaudi):
        model = LlamaCostModel(LLAMA_3_1_8B, gaudi)
        mixed = model.decode_step(4, [100, 200, 300, 400], DecodeAttention.PAGED_OPT)
        uniform = model.decode_step(4, 250, DecodeAttention.PAGED_OPT)
        assert mixed.time == pytest.approx(uniform.time, rel=0.1)

    def test_static_attention_pads_to_longest(self, gaudi):
        model = LlamaCostModel(LLAMA_3_1_8B, gaudi)
        lens = [8192] + [128] * 63
        skewed = model.decode_step(64, lens, DecodeAttention.STATIC)
        mean_ctx = sum(lens) // 64
        uniform = model.decode_step(64, [mean_ctx] * 64, DecodeAttention.STATIC)
        # Same total KV, but the static bucket pads everyone to 8192,
        # so the padded step reads ~32x the KV bytes.
        assert skewed.time > 1.3 * uniform.time

    def test_invalid_inputs(self, gaudi):
        model = LlamaCostModel(LLAMA_3_1_8B, gaudi)
        with pytest.raises(ValueError):
            model.prefill(0, 128)
        with pytest.raises(ValueError):
            model.decode_step(2, [100])
        with pytest.raises(ValueError):
            model.decode_step(1, 0)


class TestGenerate:
    def test_headline_speedup_band(self, gaudi, a100):
        """Paper: ~1.47x average single-device speedup for the 8B."""
        speedups = []
        for batch, out in [(16, 100), (64, 25), (64, 400)]:
            eg = LlamaCostModel(LLAMA_3_1_8B, gaudi).generate(batch, 100, out)
            ea = LlamaCostModel(LLAMA_3_1_8B, a100).generate(batch, 100, out)
            speedups.append(ea.total_time / eg.total_time)
        assert 1.2 < sum(speedups) / len(speedups) < 1.7

    def test_energy_efficiency_band(self, gaudi, a100):
        """Paper: ~48 % higher single-device energy efficiency."""
        eg = LlamaCostModel(LLAMA_3_1_8B, gaudi).generate(32, 100, 100)
        ea = LlamaCostModel(LLAMA_3_1_8B, a100).generate(32, 100, 100)
        assert 1.2 < ea.energy_joules / eg.energy_joules < 1.8

    def test_tokens_per_second_positive(self, gaudi):
        estimate = LlamaCostModel(LLAMA_3_1_8B, gaudi).generate(8, 100, 50)
        assert estimate.tokens_per_second > 0
        assert estimate.total_tokens == 8 * 50

    def test_prefill_dominates_short_outputs(self, gaudi):
        estimate = LlamaCostModel(LLAMA_3_1_8B, gaudi).generate(32, 2048, 4)
        assert estimate.prefill_time > estimate.decode_time

    def test_decode_dominates_long_outputs(self, gaudi):
        estimate = LlamaCostModel(LLAMA_3_1_8B, gaudi).generate(32, 100, 400)
        assert estimate.decode_time > estimate.prefill_time


class TestTensorParallel:
    def test_tp_shards_must_divide(self, gaudi):
        with pytest.raises(ValueError):
            LlamaCostModel(LLAMA_3_1_8B, gaudi, TensorParallelConfig(degree=3))

    def test_tp_speeds_up_decode(self, gaudi):
        single = LlamaCostModel(LLAMA_3_1_70B, gaudi)
        tp8 = LlamaCostModel(
            LLAMA_3_1_70B, gaudi, TensorParallelConfig.for_device(gaudi, 8)
        )
        assert tp8.decode_step(32, 512).time < single.decode_step(32, 512).time

    def test_gaudi_speedup_grows_with_devices(self, gaudi, a100):
        """Figure 12(a): Gaudi's edge increases with TP degree."""
        def speedup(tp):
            mg = LlamaCostModel(LLAMA_3_1_70B, gaudi,
                                TensorParallelConfig.for_device(gaudi, tp))
            ma = LlamaCostModel(LLAMA_3_1_70B, a100,
                                TensorParallelConfig.for_device(a100, tp))
            return (ma.generate(32, 100, 100).total_time
                    / mg.generate(32, 100, 100).total_time)

        assert speedup(8) > speedup(2)

    def test_multi_device_power_ratio(self, gaudi, a100):
        """Paper: Gaudi draws ~88 % of A100's power at TP8."""
        mg = LlamaCostModel(LLAMA_3_1_70B, gaudi,
                            TensorParallelConfig.for_device(gaudi, 8))
        ma = LlamaCostModel(LLAMA_3_1_70B, a100,
                            TensorParallelConfig.for_device(a100, 8))
        eg, ea = mg.generate(32, 100, 100), ma.generate(32, 100, 100)
        assert eg.average_power / ea.average_power == pytest.approx(0.88, abs=0.1)


class TestCapacity:
    def test_kv_capacity_positive_for_8b(self, gaudi):
        model = LlamaCostModel(LLAMA_3_1_8B, gaudi)
        assert model.max_kv_tokens() > 100_000

    def test_70b_needs_sharding_on_a100(self, a100):
        single = LlamaCostModel(LLAMA_3_1_70B, a100)
        assert single.max_kv_tokens() == 0  # weights exceed one HBM
        tp4 = LlamaCostModel(LLAMA_3_1_70B, a100,
                             TensorParallelConfig.for_device(a100, 4))
        assert tp4.max_kv_tokens() > 0


class TestServingKnobs:
    """The Section 3.5 methodology knobs: HPU/CUDA Graphs and
    optimum-habana static-shape bucketing."""

    def test_graphs_beat_eager(self, gaudi):
        captured = LlamaCostModel(LLAMA_3_1_8B, gaudi, use_graphs=True)
        eager = LlamaCostModel(LLAMA_3_1_8B, gaudi, use_graphs=False)
        assert captured.decode_step(8, 256).time < eager.decode_step(8, 256).time

    def test_bucketing_pads_decode(self, gaudi):
        exact = LlamaCostModel(LLAMA_3_1_8B, gaudi, static_bucket=1)
        bucketed = LlamaCostModel(LLAMA_3_1_8B, gaudi, static_bucket=1024)
        assert bucketed.decode_step(16, 1100).time > exact.decode_step(16, 1100).time

    def test_bucketing_noop_at_boundary(self, gaudi):
        exact = LlamaCostModel(LLAMA_3_1_8B, gaudi, static_bucket=1)
        bucketed = LlamaCostModel(LLAMA_3_1_8B, gaudi, static_bucket=1024)
        assert bucketed.decode_step(16, 1024).time == pytest.approx(
            exact.decode_step(16, 1024).time
        )

    def test_invalid_bucket(self, gaudi):
        with pytest.raises(ValueError):
            LlamaCostModel(LLAMA_3_1_8B, gaudi, static_bucket=0)

    def test_paged_attention_ignores_bucketing(self, gaudi):
        exact = LlamaCostModel(LLAMA_3_1_8B, gaudi, static_bucket=1)
        bucketed = LlamaCostModel(LLAMA_3_1_8B, gaudi, static_bucket=1024)
        assert bucketed.decode_step(
            16, 1100, DecodeAttention.PAGED_OPT
        ).time == pytest.approx(exact.decode_step(16, 1100, DecodeAttention.PAGED_OPT).time)
