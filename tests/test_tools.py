"""Profiler and smi tooling analogs."""

import json

import pytest

from repro.graph import Engine, Graph, GraphCompiler
from repro.hw.power import ActivityProfile
from repro.hw.spec import A100_SPEC, GAUDI2_SPEC
from repro.tools import GaudiProfiler, chrome_trace, hl_smi, nvidia_smi


def _compiled_graph():
    g = Graph("layer")
    gemm = g.add_op("gemm", Engine.MME, 100e-6, 1e6, 1e6, sliceable=True)
    g.add_op("act", Engine.TPC, 40e-6, 1e6, 1e6, inputs=[gemm],
             fusable=True, sliceable=True)
    return GraphCompiler().compile(g)


class TestProfiler:
    def test_profile_captures_timeline(self):
        report = GaudiProfiler().profile(_compiled_graph())
        assert report.op_count >= 1
        assert report.total_us > 0
        assert report.ops[0].start_us == 0.0

    def test_occupancy_fractions(self):
        report = GaudiProfiler().profile(_compiled_graph())
        assert 0 < report.occupancy(Engine.MME) <= 1
        assert 0 < report.occupancy(Engine.TPC) <= 1

    def test_reverse_engineer_recovers_figure7a(self):
        """The Section 3.2 methodology: the geometry map per (M, N)."""
        profiler = GaudiProfiler()
        records = profiler.reverse_engineer_mme(
            m_sizes=(64, 1024, 16384), n_sizes=(64, 1024, 16384)
        )
        assert len(records) == 9
        by_shape = {(r["m"], r["n"]): r for r in records}
        # Small shapes power gate, big squares use the full pair,
        # skinny shapes pick elongated geometries.
        assert by_shape[(64, 64)]["power_gated"]
        assert by_shape[(16384, 16384)]["geometry"] == "256x256x2"
        tall = by_shape[(16384, 64)]["geometry"]
        height, width = tall.split("x")[0:2]
        assert int(height) > int(width)

    def test_geometry_map_groups(self):
        grouped = GaudiProfiler().geometry_map((64, 16384), (64, 16384))
        assert sum(len(points) for points in grouped.values()) == 4

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            GaudiProfiler().reverse_engineer_mme((), (64,))


class TestChromeTrace:
    def test_valid_json_with_events(self):
        report = GaudiProfiler().profile(_compiled_graph())
        trace = json.loads(chrome_trace(report))
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert "X" in phases and "M" in phases

    def test_pipelined_ops_appear_on_both_engines(self):
        report = GaudiProfiler().profile(_compiled_graph())
        trace = json.loads(chrome_trace(report))
        duration_events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        tids = {e["tid"] for e in duration_events}
        assert {1, 2} <= tids  # MME and TPC rows both populated


class TestSmi:
    def test_hl_smi_reads_gaudi(self):
        sample = hl_smi(ActivityProfile(memory_util=0.8))
        assert sample.device == "Gaudi-2"
        assert sample.power_limit_watts == 600
        assert GAUDI2_SPEC.power.idle_watts < sample.power_watts < 600

    def test_nvidia_smi_reads_a100(self):
        sample = nvidia_smi(ActivityProfile(matrix_busy=0.5))
        assert sample.device == "A100"
        assert sample.power_limit_watts == 400

    def test_vendor_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hl_smi(ActivityProfile(), spec=A100_SPEC)
        with pytest.raises(ValueError):
            nvidia_smi(ActivityProfile(), spec=GAUDI2_SPEC)

    def test_render_one_liner(self):
        text = hl_smi(ActivityProfile(memory_util=0.5)).render()
        assert "Gaudi-2" in text and "W" in text
