"""HBM memory-system model (Figure 9 mechanics)."""

import pytest

from repro.hw.memory import AccessPattern, HbmModel
from repro.hw.spec import A100_SPEC, GAUDI2_SPEC


@pytest.fixture(scope="module")
def gaudi_hbm():
    return HbmModel(GAUDI2_SPEC.memory)


@pytest.fixture(scope="module")
def a100_hbm():
    return HbmModel(A100_SPEC.memory)


class TestStreaming:
    def test_stream_bandwidth_below_peak(self, gaudi_hbm):
        assert gaudi_hbm.stream_bandwidth() < GAUDI2_SPEC.memory.bandwidth

    def test_more_streams_lower_efficiency(self, gaudi_hbm):
        assert gaudi_hbm.stream_efficiency(3) < gaudi_hbm.stream_efficiency(2)

    def test_two_streams_is_base_efficiency(self, gaudi_hbm):
        assert gaudi_hbm.stream_efficiency(2) == GAUDI2_SPEC.memory.stream_efficiency

    def test_efficiency_floor(self, gaudi_hbm):
        assert gaudi_hbm.stream_efficiency(50) >= 0.35

    def test_stream_time_linear_in_bytes(self, gaudi_hbm):
        assert gaudi_hbm.stream_time(2e9) == pytest.approx(2 * gaudi_hbm.stream_time(1e9))

    def test_invalid_streams_raise(self, gaudi_hbm):
        with pytest.raises(ValueError):
            gaudi_hbm.stream_efficiency(0)


class TestGranularity:
    def test_full_granule_no_waste(self, gaudi_hbm):
        assert gaudi_hbm.granularity_efficiency(256) == 1.0
        assert gaudi_hbm.granularity_efficiency(512) == 1.0

    def test_sub_granule_waste_gaudi(self, gaudi_hbm):
        assert gaudi_hbm.granularity_efficiency(64) == pytest.approx(0.25)

    def test_sub_granule_waste_a100_starts_lower(self, a100_hbm):
        assert a100_hbm.granularity_efficiency(64) == 1.0
        assert a100_hbm.granularity_efficiency(16) == pytest.approx(0.5)

    def test_invalid_access_raises(self, gaudi_hbm):
        with pytest.raises(ValueError):
            gaudi_hbm.granularity_efficiency(0)


class TestRandomAccess:
    def test_gaudi_256b_matches_random_efficiency(self, gaudi_hbm):
        util = gaudi_hbm.random_utilization(256)
        assert util == pytest.approx(GAUDI2_SPEC.memory.random_efficiency, abs=0.01)

    def test_gaudi_small_vector_collapse(self, gaudi_hbm):
        """Paper: <=128 B gathers average ~15 % of peak on Gaudi-2."""
        utils = [gaudi_hbm.random_utilization(s) for s in (16, 32, 64, 128)]
        assert sum(utils) / 4 == pytest.approx(0.15, abs=0.04)

    def test_a100_small_vector_transaction_limited(self, a100_hbm):
        """Paper: <=128 B gathers average ~36 % of peak on A100."""
        utils = [a100_hbm.random_utilization(s) for s in (16, 32, 64, 128)]
        assert sum(utils) / 4 == pytest.approx(0.36, abs=0.06)

    def test_small_vector_gap_roughly_2_4x(self, gaudi_hbm, a100_hbm):
        gaudi = sum(gaudi_hbm.random_utilization(s) * GAUDI2_SPEC.memory.bandwidth
                    for s in (16, 32, 64, 128))
        a100 = sum(a100_hbm.random_utilization(s) * A100_SPEC.memory.bandwidth
                   for s in (16, 32, 64, 128))
        assert a100 / gaudi == pytest.approx(2.4, abs=0.8)

    def test_l2_resident_working_set_faster_on_a100(self, a100_hbm):
        hot = a100_hbm.random_bandwidth(256, working_set_bytes=8 << 20)
        cold = a100_hbm.random_bandwidth(256, working_set_bytes=1 << 30)
        assert hot > cold

    def test_no_l2_benefit_on_gaudi(self, gaudi_hbm):
        hot = gaudi_hbm.random_bandwidth(256, working_set_bytes=8 << 20)
        cold = gaudi_hbm.random_bandwidth(256, working_set_bytes=1 << 30)
        assert hot == cold

    def test_sub_granule_scatter_rmw_on_gaudi(self, gaudi_hbm):
        read = gaudi_hbm.random_bandwidth(64, is_write=False)
        write = gaudi_hbm.random_bandwidth(64, is_write=True)
        assert write == pytest.approx(read / 2)

    def test_gather_time_scales_with_count(self, gaudi_hbm):
        one = gaudi_hbm.gather_time(1000, 256)
        two = gaudi_hbm.gather_time(2000, 256)
        assert two == pytest.approx(2 * one)


class TestEstimate:
    def test_stream_estimate(self, gaudi_hbm):
        estimate = gaudi_hbm.estimate(AccessPattern.STREAM, 1e9)
        assert estimate.moved_bytes == estimate.useful_bytes
        assert estimate.achieved_bandwidth == pytest.approx(gaudi_hbm.stream_bandwidth())

    def test_random_estimate_tracks_waste(self, gaudi_hbm):
        estimate = gaudi_hbm.estimate(AccessPattern.RANDOM, 1e6, access_bytes=64)
        assert estimate.moved_bytes == pytest.approx(4e6)

    def test_random_estimate_needs_access_bytes(self, gaudi_hbm):
        with pytest.raises(ValueError):
            gaudi_hbm.estimate(AccessPattern.RANDOM, 1e6)
