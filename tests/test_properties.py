"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import CollectiveOp, HcclLibrary, NcclLibrary
from repro.comm.busbw import bus_bandwidth_factor
from repro.hw.device import A100Device, Gaudi2Device
from repro.hw.memory import HbmModel
from repro.hw.power import ActivityProfile, PowerModel
from repro.hw.spec import A100_SPEC, GAUDI2_SPEC
from repro.hw.systolic import SystolicArray, SystolicGeometry, blocked_gemm_traffic
from repro.kernels.softmax import softmax
from repro.serving.block_table import build_block_list, build_block_table
from repro.serving.kv_cache import BlockManager
from repro.tpc.index_space import partition_members
from repro.tpc.intrinsics import as_bf16, v_gather, v_scatter

_GAUDI = Gaudi2Device()
_A100 = A100Device()

dims = st.integers(min_value=1, max_value=4096)


class TestGemmProperties:
    @given(m=dims, k=dims, n=dims)
    @settings(max_examples=60, deadline=None)
    def test_utilization_in_unit_interval(self, m, k, n):
        for device in (_GAUDI, _A100):
            result = device.gemm(m, k, n)
            assert 0.0 < result.utilization <= 1.0
            assert result.time > 0.0

    @given(m=dims, k=dims, n=dims)
    @settings(max_examples=40, deadline=None)
    def test_time_monotone_in_each_dimension(self, m, k, n):
        base = _GAUDI.gemm(m, k, n).time
        assert _GAUDI.gemm(2 * m, k, n).time >= base * 0.999
        assert _GAUDI.gemm(m, 2 * k, n).time >= base * 0.999
        assert _GAUDI.gemm(m, k, 2 * n).time >= base * 0.999

    @given(m=dims, k=dims, n=dims)
    @settings(max_examples=40, deadline=None)
    def test_configurable_mme_never_slower_than_fixed(self, m, k, n):
        flexible = Gaudi2Device(mme_configurable=True)
        fixed = Gaudi2Device(mme_configurable=False)
        assert flexible.gemm(m, k, n).time <= fixed.gemm(m, k, n).time * 1.0001

    @given(
        m=dims, k=dims, n=dims,
        itemsize=st.sampled_from([1, 2, 4]),
        sram=st.integers(min_value=1 << 16, max_value=1 << 27),
    )
    @settings(max_examples=50, deadline=None)
    def test_traffic_at_least_compulsory(self, m, k, n, itemsize, sram):
        traffic = blocked_gemm_traffic(m, k, n, itemsize, sram)
        compulsory = itemsize * (m * k + k * n + m * n)
        assert traffic >= compulsory * 0.999


class TestSystolicProperties:
    @given(
        h=st.sampled_from([64, 128, 256, 512]),
        w=st.sampled_from([64, 128, 256, 512]),
        m=dims, k=dims, n=dims,
    )
    @settings(max_examples=50, deadline=None)
    def test_utilization_bounded_by_active_fraction(self, h, w, m, k, n):
        geometry = SystolicGeometry(h, w)
        array = SystolicArray(geometry, 1.0)
        util = array.utilization(m, k, n, total_macs=131072)
        assert util <= geometry.active_macs / 131072 + 1e-9


class TestMemoryProperties:
    @given(size=st.integers(min_value=1, max_value=8192))
    @settings(max_examples=60, deadline=None)
    def test_random_bandwidth_positive_and_capped(self, size):
        for spec in (GAUDI2_SPEC, A100_SPEC):
            hbm = HbmModel(spec.memory)
            bw = hbm.random_bandwidth(size)
            assert 0 < bw <= spec.memory.bandwidth

    @given(granules=st.integers(min_value=1, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_random_bandwidth_monotone_at_granule_boundaries(self, granules):
        # Useful bandwidth is only monotone across granule-aligned sizes
        # (just past a boundary the moved/useful ratio jumps).
        hbm = HbmModel(GAUDI2_SPEC.memory)
        size = granules * GAUDI2_SPEC.memory.min_access_bytes
        next_size = size + GAUDI2_SPEC.memory.min_access_bytes
        assert hbm.random_bandwidth(next_size) >= hbm.random_bandwidth(size) * 0.999


class TestPowerProperties:
    @given(
        m=st.floats(0, 1), a=st.floats(0, 1), v=st.floats(0, 1),
        u=st.floats(0, 1), c=st.floats(0, 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_power_between_idle_and_tdp(self, m, a, v, u, c):
        profile = ActivityProfile(
            matrix_busy=m, matrix_active_fraction=a, vector_busy=v,
            memory_util=u, comm_busy=c,
        )
        for spec in (GAUDI2_SPEC, A100_SPEC):
            watts = PowerModel(spec.power).power(profile)
            assert spec.power.idle_watts <= watts <= spec.power.tdp_watts


class TestCommProperties:
    @given(
        op=st.sampled_from(list(CollectiveOp)),
        participants=st.integers(min_value=2, max_value=8),
        size=st.integers(min_value=1024, max_value=1 << 26),
    )
    @settings(max_examples=60, deadline=None)
    def test_bus_utilization_in_unit_interval(self, op, participants, size):
        for library in (HcclLibrary(), NcclLibrary()):
            report = library.run(op, size, participants)
            assert 0.0 < report.bus_utilization <= 1.0

    @given(
        op=st.sampled_from(list(CollectiveOp)),
        participants=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_busbw_factor_at_most_two(self, op, participants):
        assert 0 < bus_bandwidth_factor(op, participants) <= 2.0

    @given(
        participants=st.integers(min_value=2, max_value=8),
        small=st.integers(min_value=1024, max_value=1 << 20),
        factor=st.integers(min_value=2, max_value=32),
    )
    @settings(max_examples=40, deadline=None)
    def test_time_monotone_in_size(self, participants, small, factor):
        library = HcclLibrary()
        a = library.all_reduce(small, participants).time
        b = library.all_reduce(small * factor, participants).time
        assert b >= a


class TestPartitionProperties:
    @given(
        members=st.integers(min_value=0, max_value=10_000),
        tpcs=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=80, deadline=None)
    def test_partition_conserves_and_balances(self, members, tpcs):
        counts = partition_members(members, tpcs)
        assert sum(counts) == members
        assert max(counts) - min(counts) <= 1
        assert max(counts) == math.ceil(members / tpcs) if members else True


class TestKvCacheProperties:
    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=2000),
                         min_size=1, max_size=20)
    )
    @settings(max_examples=50, deadline=None)
    def test_allocate_free_conserves_pool(self, lengths):
        manager = BlockManager(num_blocks=1024, block_size=128)
        for rid, tokens in enumerate(lengths):
            manager.allocate(rid, tokens)
        for rid in range(len(lengths)):
            manager.free(rid)
        assert manager.free_blocks == 1024

    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=50),
                         min_size=1, max_size=10)
    )
    @settings(max_examples=50, deadline=None)
    def test_block_table_and_list_agree_on_effectual(self, lengths):
        per_request = [[i] * n for i, n in enumerate(lengths, start=1)]
        table = build_block_table(per_request)
        blist = build_block_list(per_request)
        assert table.effectual_entries == blist.total_entries
        assert 0.0 <= table.padding_fraction < 1.0


class TestNumericProperties:
    @given(
        data=st.lists(st.floats(-50, 50), min_size=2, max_size=64)
    )
    @settings(max_examples=60, deadline=None)
    def test_softmax_is_distribution(self, data):
        out = softmax(np.array(data))
        assert np.all(out >= 0)
        assert abs(out.sum() - 1.0) < 1e-9

    @given(data=st.lists(st.floats(-1e30, 1e30, allow_nan=False), min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_bf16_truncation_bounded(self, data):
        values = np.array(data, dtype=np.float32)
        truncated = as_bf16(values)
        finite = np.isfinite(values) & (np.abs(values) > 1e-30)
        rel = np.abs(truncated[finite] - values[finite]) / np.abs(values[finite])
        assert (rel < 2**-7).all()

    @given(
        rows=st.integers(min_value=1, max_value=32),
        cols=st.integers(min_value=1, max_value=8),
        n_idx=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_gather_scatter_roundtrip(self, rows, cols, n_idx, seed):
        rng = np.random.default_rng(seed)
        table = rng.normal(size=(rows, cols))
        indices = rng.integers(0, rows, size=n_idx)
        gathered = v_gather(table, indices)
        rebuilt = v_scatter(table, indices, gathered)
        np.testing.assert_allclose(rebuilt, table)
