"""Property tests for the admission-control primitives.

Two guarantees the docstrings promise, pinned over randomized inputs:

* A :class:`TokenBucket` admits at most ``rate * window + burst``
  requests over any probe window.
* A :class:`WeightedFairQueue` never starves a backlogged tenant --
  every tenant is served within a bounded number of dequeues of its
  previous service.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import TokenBucket, WeightedFairQueue

_rates = st.floats(min_value=0.1, max_value=50.0,
                   allow_nan=False, allow_infinity=False)
_bursts = st.floats(min_value=1.0, max_value=16.0,
                    allow_nan=False, allow_infinity=False)
_probe_times = st.lists(
    st.floats(min_value=0.0, max_value=10.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200,
)


class TestTokenBucketBound:
    @given(rate=_rates, burst=_bursts, times=_probe_times)
    @settings(max_examples=50, deadline=None)
    def test_never_admits_more_than_rate_window_plus_burst(
        self, rate, burst, times
    ):
        bucket = TokenBucket(rate=rate, burst=burst)
        times = sorted(times)
        admitted = sum(bucket.admit(t) for t in times)
        # The bucket starts full at t=0, so over the window [0, max(t)]
        # it can hand out at most the initial burst plus the refill.
        bound = rate * times[-1] + burst
        assert admitted <= bound + 1e-6

    @given(rate=_rates, burst=_bursts,
           times=_probe_times, split=st.integers(min_value=1, max_value=199))
    @settings(max_examples=50, deadline=None)
    def test_bound_holds_over_any_suffix_window(
        self, rate, burst, times, split
    ):
        # Not just from t=0: any probe window [t_k, t_end] obeys the
        # same bound, because held tokens never exceed the burst.
        bucket = TokenBucket(rate=rate, burst=burst)
        times = sorted(times)
        split = min(split, len(times) - 1)
        for t in times[:split]:
            bucket.admit(t)
        suffix = times[split:]
        if not suffix:
            return
        admitted = sum(bucket.admit(t) for t in suffix)
        window = suffix[-1] - suffix[0]
        assert admitted <= rate * window + burst + 1e-6


_weight_lists = st.lists(
    st.floats(min_value=0.5, max_value=8.0,
              allow_nan=False, allow_infinity=False),
    min_size=2, max_size=5,
)


class TestWeightedFairQueueNoStarvation:
    @given(weights=_weight_lists, rounds=st.integers(min_value=2, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_backlogged_tenant_service_gap_is_bounded(self, weights, rounds):
        """With every tenant permanently backlogged, the gap between
        consecutive services of any tenant stays within its fair-share
        period (sum(weights) / weight dequeues), plus slack for
        simultaneous tag ties across the other tenants."""
        wfq = WeightedFairQueue()
        names = [f"t{i}" for i in range(len(weights))]
        for name, weight in zip(names, weights):
            wfq.register(name, weight)
        total_pops = rounds * len(weights) * 4
        for name in names:
            for i in range(total_pops):
                wfq.push(name, i)
        last_seen = {name: 0 for name in names}
        total_weight = sum(weights)
        bounds = {
            name: math.ceil(total_weight / weight) + len(weights)
            for name, weight in zip(names, weights)
        }
        for step in range(1, total_pops + 1):
            name, _ = wfq.pop()
            gap = step - last_seen[name]
            last_seen[name] = step
            assert gap <= bounds[name], (
                f"tenant {name} waited {gap} dequeues "
                f"(bound {bounds[name]})"
            )

    @given(weights=_weight_lists)
    @settings(max_examples=50, deadline=None)
    def test_service_shares_track_weights(self, weights):
        wfq = WeightedFairQueue()
        names = [f"t{i}" for i in range(len(weights))]
        for name, weight in zip(names, weights):
            wfq.register(name, weight)
        pops = 40 * len(weights)
        for name in names:
            for i in range(pops):
                wfq.push(name, i)
        served = {name: 0 for name in names}
        for _ in range(pops):
            name, _ = wfq.pop()
            served[name] += 1
        total_weight = sum(weights)
        for name, weight in zip(names, weights):
            expected = pops * weight / total_weight
            # Within one fair-share round of the ideal split.
            assert abs(served[name] - expected) <= total_weight / weight + 1
