"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_gemm_args(self):
        args = build_parser().parse_args(["gemm", "64", "128", "256", "--dtype", "fp32"])
        assert (args.m, args.k, args.n) == (64, 128, 256)
        assert args.dtype == "fp32"

    def test_bad_dtype_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gemm", "1", "1", "1", "--dtype", "fp64"])


class TestCommands:
    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "Gaudi-2" in out and "1.5x" in out

    def test_gemm(self, capsys):
        assert main(["gemm", "2048", "2048", "2048"]) == 0
        out = capsys.readouterr().out
        assert "MME" in out and "CTA" in out

    def test_gemm_gaudi3(self, capsys):
        assert main(["gemm", "4096", "4096", "4096", "--devices", "gaudi3"]) == 0
        assert "Gaudi-3" in capsys.readouterr().out

    def test_figures_single(self, capsys, tmp_path):
        assert main(["figures", "--id", "table1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()
        assert "matrix_tflops_ratio" in capsys.readouterr().out

    def test_serve(self, capsys):
        assert main(["serve", "--requests", "4", "--max-batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "TTFT" in out

    def test_smi_both_vendors(self, capsys):
        assert main(["smi", "--device", "gaudi2", "--workload", "llm"]) == 0
        assert main(["smi", "--device", "a100", "--workload", "recsys"]) == 0
        out = capsys.readouterr().out
        assert "Gaudi-2" in out and "A100" in out

    def test_figures_markdown(self, capsys):
        assert main(["figures", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "Paper vs measured" in out
        assert "**NO**" not in out
