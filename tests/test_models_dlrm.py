"""DLRM-DCNv2 models (Figure 11)."""

import numpy as np
import pytest

from repro.kernels.elementwise import relu
from repro.models.dlrm import (
    DlrmConfig,
    DlrmCostModel,
    RM1_CONFIG,
    RM2_CONFIG,
    reference_dlrm_forward,
)


class TestConfigs:
    def test_rm1_table3_values(self):
        assert RM1_CONFIG.bottom_mlp == (512, 256, 64)
        assert RM1_CONFIG.top_mlp == (1024, 1024, 512, 256, 1)
        assert RM1_CONFIG.cross_low_rank == 512
        assert RM1_CONFIG.cross_layers == 3

    def test_rm2_table3_values(self):
        assert RM2_CONFIG.bottom_mlp == (256, 64, 64)
        assert RM2_CONFIG.top_mlp == (128, 64, 1)
        assert RM2_CONFIG.cross_low_rank == 64
        assert RM2_CONFIG.cross_layers == 2
        assert RM2_CONFIG.rows_per_table == 1_000_000

    def test_embedding_dim_resize_keeps_consistency(self):
        resized = RM1_CONFIG.with_embedding_dim(128)
        assert resized.embedding_dim == 128
        assert resized.bottom_mlp[-1] == 128

    def test_inconsistent_bottom_mlp_rejected(self):
        with pytest.raises(ValueError, match="bottom MLP"):
            DlrmConfig("bad", 2, 1000, 64, 1, 13, (128, 32), (64, 1), 32, 1)

    def test_interaction_width(self):
        assert RM1_CONFIG.interaction_width == 11 * 64


class TestForward:
    def test_breakdown_covers_total(self, gaudi):
        estimate = DlrmCostModel(RM1_CONFIG, gaudi).forward(2048)
        assert sum(estimate.breakdown.values()) == pytest.approx(estimate.time)
        assert set(estimate.breakdown) == {
            "embedding", "bottom_mlp", "interaction", "top_mlp"
        }

    def test_rm2_embedding_dominated(self, gaudi):
        """RM2 is the memory-intensive configuration."""
        estimate = DlrmCostModel(RM2_CONFIG, gaudi).forward(4096)
        assert estimate.breakdown["embedding"] > 0.5 * estimate.time

    def test_rm1_compute_heavy(self, gaudi):
        """RM1's MLP + interaction outweigh its embedding."""
        estimate = DlrmCostModel(RM1_CONFIG, gaudi).forward(4096)
        mlp = (estimate.breakdown["bottom_mlp"] + estimate.breakdown["top_mlp"]
               + estimate.breakdown["interaction"])
        assert mlp > estimate.breakdown["embedding"]

    def test_gaudi_slower_on_average(self, gaudi, a100):
        """Paper: ~20 % average RecSys slowdown on Gaudi-2."""
        ratios = []
        for cfg in (RM1_CONFIG, RM2_CONFIG):
            for batch in (1024, 8192):
                fg = DlrmCostModel(cfg, gaudi).forward(batch)
                fa = DlrmCostModel(cfg, a100).forward(batch)
                ratios.append(fa.time / fg.time)
        assert 0.6 < sum(ratios) / len(ratios) < 1.0

    def test_small_vectors_hurt_gaudi_most(self, gaudi, a100):
        """Paper: up to 70 % slowdown for RM2 with <256 B vectors."""
        small = RM2_CONFIG.with_embedding_dim(16)  # 64 B rows
        fg = DlrmCostModel(small, gaudi).forward(4096)
        fa = DlrmCostModel(small, a100).forward(4096)
        assert fa.time / fg.time < 0.7

    def test_gaudi_wins_at_wide_vectors(self, gaudi, a100):
        """Paper: up to 1.36x speedup with wide embedding vectors."""
        wide = RM2_CONFIG.with_embedding_dim(256)  # 1 KB vectors
        fg = DlrmCostModel(wide, gaudi).forward(256)
        fa = DlrmCostModel(wide, a100).forward(256)
        assert fa.time / fg.time == pytest.approx(1.36, abs=0.15)

    def test_invalid_batch(self, gaudi):
        with pytest.raises(ValueError):
            DlrmCostModel(RM1_CONFIG, gaudi).forward(0)

    def test_unknown_device_rejected(self):
        with pytest.raises(TypeError):
            DlrmCostModel(RM1_CONFIG, object())

    def test_energy_accounting(self, gaudi):
        estimate = DlrmCostModel(RM2_CONFIG, gaudi).forward(4096)
        assert estimate.energy_joules == pytest.approx(
            estimate.average_power * estimate.time
        )
        assert estimate.requests_per_joule > 0


class TestFunctionalForward:
    def _tiny_setup(self):
        config = DlrmConfig(
            name="tiny", num_tables=2, rows_per_table=16, embedding_dim=4,
            pooling=2, dense_features=3, bottom_mlp=(8, 4), top_mlp=(6, 1),
            cross_low_rank=3, cross_layers=2,
        )
        rng = np.random.default_rng(42)
        batch = 5
        dense = rng.normal(size=(batch, 3))
        tables = rng.normal(size=(2, 16, 4))
        indices = rng.integers(0, 16, size=(batch, 2, 2))
        width = config.interaction_width
        weights = {
            "bottom": [rng.normal(size=(3, 8)), rng.normal(size=(8, 4))],
            "top": [rng.normal(size=(width, 6)), rng.normal(size=(6, 1))],
            "cross_u": [rng.normal(size=(3, width)) for _ in range(2)],
            "cross_v": [rng.normal(size=(width, 3)) for _ in range(2)],
            "cross_b": [rng.normal(size=width) for _ in range(2)],
        }
        return config, dense, tables, indices, weights

    def test_forward_shape(self):
        config, dense, tables, indices, weights = self._tiny_setup()
        out = reference_dlrm_forward(config, dense, tables, indices, weights)
        assert out.shape == (5, 1)

    def test_forward_matches_manual_computation(self):
        config, dense, tables, indices, weights = self._tiny_setup()
        out = reference_dlrm_forward(config, dense, tables, indices, weights)
        # manual recomputation
        x = relu(relu(dense @ weights["bottom"][0]) @ weights["bottom"][1])
        bags = np.stack(
            [tables[t][indices[:, t]].sum(axis=1) for t in range(2)], axis=1
        )
        x0 = np.concatenate([x[:, None, :], bags], axis=1).reshape(5, -1)
        xc = x0
        for u, v, b in zip(weights["cross_u"], weights["cross_v"], weights["cross_b"]):
            xc = x0 * ((xc @ v) @ u + b) + xc
        expected = relu(xc @ weights["top"][0]) @ weights["top"][1]
        np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_forward_deterministic(self):
        config, dense, tables, indices, weights = self._tiny_setup()
        a = reference_dlrm_forward(config, dense, tables, indices, weights)
        b = reference_dlrm_forward(config, dense, tables, indices, weights)
        np.testing.assert_array_equal(a, b)
