"""Property-based tests: fleet request conservation under node chaos.

The load-bearing invariant of the fleet layer is that no admitted
request is ever lost or double-served, no matter when nodes crash,
recover, or brown out.  Hypothesis drives randomized node-crash
schedules against small fleets under the strict auditor (so the
internal conservation checks raise on any violation too).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import audit_scope
from repro.cluster import FleetConfig, NodeFaultPlan, run_fleet
from repro.serving.request import RetryPolicy

_NODE_NAMES = ["gaudi2-0", "gaudi2-1", "a100-0"]

crash_events = st.lists(
    st.tuples(
        st.sampled_from(_NODE_NAMES),
        st.floats(min_value=0.1, max_value=4.0),
        st.one_of(st.none(), st.floats(min_value=0.2, max_value=4.0)),
    ),
    min_size=0,
    max_size=3,
)

brownout_events = st.lists(
    st.tuples(
        st.sampled_from(_NODE_NAMES),
        st.floats(min_value=0.2, max_value=0.9),
        st.floats(min_value=0.1, max_value=3.0),
    ),
    min_size=0,
    max_size=2,
)


def _build_plan(crashes, brownouts):
    plan = NodeFaultPlan()
    crashed = set()
    for node, at, recover_delta in crashes:
        if node in crashed:
            continue  # one crash per node keeps the schedule well-formed
        crashed.add(node)
        recover_at = None if recover_delta is None else at + recover_delta
        plan.crash(node, at=at, recover_at=recover_at)
    for node, factor, at in brownouts:
        plan.brownout(node, factor, at=at)
    return plan


class TestFleetConservation:
    @given(crashes=crash_events, brownouts=brownout_events, seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_requests_conserved_under_crash_schedules(
        self, crashes, brownouts, seed
    ):
        plan = _build_plan(crashes, brownouts)
        config = FleetConfig(
            nodes=(("gaudi2", 2), ("a100", 1)),
            tp=2,
            num_requests=12,
            rate=8.0,
            seed=seed,
            timeout=30.0,
            retry=RetryPolicy(max_retries=2, backoff_base=0.1, jitter=0.5),
            plan=plan,
        )
        with audit_scope("strict"):
            report = run_fleet(config)
        # Every admitted request is exactly one of finished/shed.
        assert report.admitted == 12
        assert report.finished + report.shed == 12
        assert report.unfinished == 0
        # No double-serving: one finished attempt per finished request.
        assert report.attempt_finished == report.finished
        # The attempt ledger partitions everything that was dispatched.
        assert report.attempts == (
            report.attempt_finished
            + report.attempt_shed_engine
            + report.attempt_shed_gateway
            + report.attempt_failed
        )
        # Crashed work failed over rather than vanished.
        if report.attempt_failed:
            assert report.failovers == report.attempt_failed

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=5, deadline=None)
    def test_chaos_free_runs_finish_everything(self, seed):
        config = FleetConfig(
            nodes=(("gaudi2", 2),),
            tp=2,
            num_requests=10,
            rate=8.0,
            seed=seed,
        )
        with audit_scope("strict"):
            report = run_fleet(config)
        assert report.finished == 10
        assert report.shed == 0
        assert report.retries == 0
        assert report.failovers == 0
        assert all(n.failed == 0 for n in report.node_reports)
