"""End-to-end LLM serving engine (Figure 17(d, e))."""

import pytest

from repro.models.llama import DecodeAttention, LLAMA_3_1_8B, LlamaCostModel
from repro.serving import (
    LlmServingEngine,
    RecSysServer,
    dynamic_sonnet_requests,
    fixed_length_requests,
)
from repro.models.dlrm import DlrmCostModel, RM2_CONFIG


def _engine(device, attention=DecodeAttention.PAGED_OPT, max_batch=16):
    return LlmServingEngine(
        LlamaCostModel(LLAMA_3_1_8B, device), attention, max_decode_batch=max_batch
    )


class TestServingRun:
    def test_all_requests_complete(self, gaudi):
        requests = fixed_length_requests(8, 100, 10)
        report = _engine(gaudi).run(requests)
        assert report.num_requests == 8
        assert report.total_output_tokens == 80
        assert all(r.done for r in requests)

    def test_metrics_positive(self, gaudi):
        report = _engine(gaudi).run(fixed_length_requests(4, 100, 10))
        assert report.total_time > 0
        assert report.mean_ttft > 0
        assert report.mean_tpot > 0
        assert report.throughput_tokens_per_s > 0
        assert report.average_power > 0
        assert report.energy_per_token > 0

    def test_empty_request_list_yields_empty_report(self, gaudi):
        report = _engine(gaudi).run([])
        assert report.num_requests == 0
        assert report.total_time == 0.0
        assert report.completion_rate == 0.0
        assert "no finished requests" in report.render()

    def test_later_arrivals_wait(self, gaudi):
        requests = fixed_length_requests(2, 100, 5)
        requests[1].arrival_time = 100.0
        report = _engine(gaudi).run(requests)
        assert report.total_time > 100.0
        assert requests[1].ttft < requests[1].first_token_time

    def test_deterministic(self, gaudi):
        r1 = _engine(gaudi).run(dynamic_sonnet_requests(12, seed=5))
        r2 = _engine(gaudi).run(dynamic_sonnet_requests(12, seed=5))
        assert r1.total_time == pytest.approx(r2.total_time)


class TestBatchSizeSweep:
    """Figure 17(d, e) shapes."""

    def test_throughput_improves_with_batch(self, gaudi):
        small = _engine(gaudi, max_batch=2).run(dynamic_sonnet_requests(32, seed=2))
        large = _engine(gaudi, max_batch=32).run(dynamic_sonnet_requests(32, seed=2))
        assert large.throughput_tokens_per_s > 1.5 * small.throughput_tokens_per_s

    def test_tpot_grows_with_batch(self, gaudi):
        small = _engine(gaudi, max_batch=2).run(dynamic_sonnet_requests(32, seed=2))
        large = _engine(gaudi, max_batch=32).run(dynamic_sonnet_requests(32, seed=2))
        assert large.mean_tpot > small.mean_tpot

    def test_opt_attention_beats_base_end_to_end(self, gaudi):
        opt = _engine(gaudi, DecodeAttention.PAGED_OPT).run(
            dynamic_sonnet_requests(16, seed=3)
        )
        base = _engine(gaudi, DecodeAttention.PAGED_BASE).run(
            dynamic_sonnet_requests(16, seed=3)
        )
        assert opt.throughput_tokens_per_s > base.throughput_tokens_per_s

    def test_gaudi_competitive_with_a100_end_to_end(self, gaudi, a100):
        """Paper: vLLM_opt Gaudi-2 shows comparable e2e throughput."""
        rg = _engine(gaudi, DecodeAttention.PAGED_OPT).run(
            dynamic_sonnet_requests(24, seed=4)
        )
        ra = LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, a100), DecodeAttention.PAGED_CUDA,
            max_decode_batch=16,
        ).run(dynamic_sonnet_requests(24, seed=4))
        ratio = rg.throughput_tokens_per_s / ra.throughput_tokens_per_s
        assert 0.8 < ratio < 1.6


class TestPreemption:
    def test_preempts_when_kv_pool_tiny(self, gaudi):
        engine = LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, gaudi),
            DecodeAttention.PAGED_OPT,
            max_decode_batch=8,
            num_kv_blocks=24,   # deliberately tiny pool
        )
        requests = fixed_length_requests(8, 256, 200)
        report = engine.run(requests)
        assert report.preemptions > 0
        assert all(r.done for r in requests)

    def test_preemption_recompute_lifecycle(self, gaudi):
        """A preempted request is re-admitted, re-prefilled, and its
        recorded TTFT reflects the restart."""
        # 5 blocks of 128 tokens: two 256-token prefills fit (2 blocks
        # each), but as soon as both grow past a block boundary the pool
        # is exhausted and the younger request must be preempted.
        engine = LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, gaudi),
            DecodeAttention.PAGED_OPT,
            max_decode_batch=2,
            num_kv_blocks=5,
        )
        requests = fixed_length_requests(2, 256, 200)
        survivor, victim = requests
        report = engine.run(requests)
        # the younger request thrashes in and out of the pool until the
        # survivor finishes and frees its blocks -- every cycle is a full
        # recompute restart, and the engine counts each one.
        assert victim.restarts >= 1
        assert survivor.restarts == 0
        assert report.preemptions == victim.restarts
        assert all(r.done for r in requests)
        assert all(r.generated == 200 for r in requests)
        # the victim's first token only lands after its last re-prefill
        assert victim.ttft > survivor.ttft

    def test_preemption_via_scheduler_api(self, gaudi):
        """ContinuousBatchingScheduler.preempt owns the whole victim
        hand-back: engine internals never touch waiting/running lists."""
        from repro.serving import BlockManager, ContinuousBatchingScheduler

        scheduler = ContinuousBatchingScheduler(
            BlockManager(num_blocks=16, block_size=128), max_decode_batch=4
        )
        requests = fixed_length_requests(2, 100, 10)
        for request in requests:
            scheduler.submit(request)
        scheduler.step(0.0)
        assert scheduler.running == requests
        victim = requests[-1]
        scheduler.preempt(victim)
        assert victim not in scheduler.running
        assert scheduler.waiting[0] is victim
        assert victim.restarts == 1
        assert victim.generated == 0
        with pytest.raises(ValueError):
            scheduler.preempt(victim)  # not running any more


class TestRecSysServer:
    def test_report_fields(self, gaudi):
        server = RecSysServer(DlrmCostModel(RM2_CONFIG, gaudi))
        report = server.serve_batch(2048)
        assert report.batch == 2048
        assert report.requests_per_s == pytest.approx(2048 / report.latency)
        assert report.energy_per_request > 0
