"""Admission-control primitives: tenants, quotas, WFQ, breakers, upgrades."""

import pytest

from repro.audit import ConfigError
from repro.cluster import (
    AdmissionController,
    AdmissionMode,
    AdmissionPolicy,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    Gateway,
    Node,
    NodeClass,
    TenantSpec,
    TokenBucket,
    UpgradePlan,
    WeightedFairQueue,
    parse_tenants_spec,
)
from repro.cluster.admission import (
    bump_counter,
    render_counters,
    reset_counters,
    snapshot_counters,
)
from repro.serving.request import RetryPolicy


class TestTenantSpec:
    def test_defaults(self):
        spec = TenantSpec(name="acme")
        assert spec.tier == 1
        assert spec.quota_rate is None
        assert spec.ttft_slo is None

    @pytest.mark.parametrize("kwargs", [
        {"name": ""},
        {"name": "t", "tier": -1},
        {"name": "t", "tier": 3},
        {"name": "t", "share": 0.0},
        {"name": "t", "weight": -1.0},
        {"name": "t", "quota_rate": 0.0},
        {"name": "t", "quota_burst": 0.5},
        {"name": "t", "ttft_slo": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            TenantSpec(**kwargs)

    def test_dict_round_trip(self):
        spec = TenantSpec(
            name="gold", tier=0, share=0.25, weight=4.0,
            quota_rate=8.0, quota_burst=8.0, ttft_slo=2.0,
        )
        assert TenantSpec.from_dict(spec.to_dict()) == spec


class TestParseTenantsSpec:
    def test_parses_full_spec(self):
        tenants = parse_tenants_spec(
            "gold:tier=0,share=0.25,weight=4,slo=2;"
            "bronze:tier=2,share=0.75,rate=8,burst=8"
        )
        gold, bronze = tenants
        assert gold == TenantSpec(
            name="gold", tier=0, share=0.25, weight=4.0, ttft_slo=2.0
        )
        assert bronze.quota_rate == 8.0
        assert bronze.quota_burst == 8.0
        assert bronze.ttft_slo is None

    def test_bare_name_gets_defaults(self):
        (tenant,) = parse_tenants_spec("acme:")
        assert tenant == TenantSpec(name="acme")

    @pytest.mark.parametrize("spec", [
        "",
        "noseparator",
        "t:tier",
        "t:tier=zero",
        "t:color=red",
        "a:tier=0;a:tier=1",
    ])
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ConfigError):
            parse_tenants_spec(spec)


class TestTokenBucket:
    def test_burst_then_denial(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.admit(0.0)
        assert bucket.admit(0.0)
        assert not bucket.admit(0.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=1.0)
        assert bucket.admit(0.0)
        assert not bucket.admit(0.1)
        assert bucket.admit(0.6)  # 0.5s at 2/s refills the single token

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0)
        assert bucket.admit(10.0)
        assert bucket.admit(10.0)
        assert not bucket.admit(10.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate=0.0, burst=2.0)
        with pytest.raises(ConfigError):
            TokenBucket(rate=1.0, burst=0.5)


class TestWeightedFairQueue:
    def test_service_proportional_to_weight(self):
        wfq = WeightedFairQueue()
        wfq.register("heavy", 2.0)
        wfq.register("light", 1.0)
        for i in range(6):
            wfq.push("heavy", f"h{i}")
            wfq.push("light", f"l{i}")
        served = [wfq.pop()[0] for _ in range(6)]
        assert served.count("heavy") == 4
        assert served.count("light") == 2

    def test_equal_weights_alternate(self):
        wfq = WeightedFairQueue()
        wfq.register("a", 1.0)
        wfq.register("b", 1.0)
        for i in range(4):
            wfq.push("a", i)
            wfq.push("b", i)
        assert [wfq.pop()[0] for _ in range(4)] == ["a", "b", "a", "b"]

    def test_idle_tenant_banks_no_credit(self):
        wfq = WeightedFairQueue()
        wfq.register("busy", 1.0)
        wfq.register("idle", 1.0)
        for i in range(10):
            wfq.push("busy", i)
        for _ in range(8):
            wfq.pop()
        # The long-idle tenant re-enters at the current virtual time:
        # it gets its fair share from now on, not a burst of make-up
        # service for the time it spent idle.
        wfq.push("idle", "late0")
        wfq.push("idle", "late1")
        served = [wfq.pop()[0] for _ in range(4)]
        assert served.count("idle") == 2
        assert served.count("busy") == 2

    def test_remove_and_len(self):
        wfq = WeightedFairQueue()
        wfq.register("a", 1.0)
        wfq.push("a", "x")
        wfq.push("a", "y")
        assert len(wfq) == 2
        wfq.remove("a", "x")
        assert len(wfq) == 1
        assert wfq.pop() == ("a", "y")
        assert wfq.pop() is None

    def test_register_validation(self):
        wfq = WeightedFairQueue()
        wfq.register("a", 1.0)
        with pytest.raises(ConfigError):
            wfq.register("a", 1.0)
        with pytest.raises(ConfigError):
            wfq.register("b", 0.0)


class TestCircuitBreaker:
    def _breaker(self, threshold=2, cooldown=1.0):
        return CircuitBreaker(BreakerPolicy(
            failure_threshold=threshold, cooldown=cooldown
        ))

    def test_opens_after_consecutive_failures(self):
        breaker = self._breaker()
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(0.5)
        assert breaker.state is BreakerState.OPEN
        assert breaker.blocked(1.0)

    def test_success_resets_the_failure_streak(self):
        breaker = self._breaker()
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(1.0)
        assert breaker.state is BreakerState.CLOSED

    def test_cooldown_then_single_probe(self):
        breaker = self._breaker(cooldown=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.blocked(0.5)
        assert not breaker.blocked(1.5)  # eligible for a probe
        breaker.on_dispatch(1.5)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.probes == 1
        assert breaker.blocked(1.5)  # exactly one probe in flight

    def test_probe_success_closes(self):
        breaker = self._breaker(cooldown=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.on_dispatch(1.5)
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert not breaker.blocked(1.5)
        assert breaker.closes == 1

    def test_probe_failure_reopens_for_another_cooldown(self):
        breaker = self._breaker(cooldown=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.on_dispatch(1.5)
        breaker.record_failure(2.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.blocked(2.5)
        assert not breaker.blocked(3.5)
        assert breaker.opens == 2

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ConfigError):
            BreakerPolicy(cooldown=0.0)


def _controller(policy=None, tenants=None):
    tenants = tenants or (
        TenantSpec(name="gold", tier=0, weight=4.0),
        TenantSpec(name="bronze", tier=2, weight=1.0),
    )
    return AdmissionController(tenants, policy or AdmissionPolicy(
        target_queue_delay=0.5, shed_queue_delay=2.0, max_queue_delay=10.0
    ))


class TestAdmissionController:
    def test_quota_denial_reason(self):
        controller = _controller(tenants=(
            TenantSpec(name="metered", tier=2, quota_rate=1.0, quota_burst=1.0),
        ))
        assert controller.offer(0, "metered", 0.0) is None
        reason = controller.offer(1, "metered", 0.0)
        assert reason == "quota: tenant metered over 1 req/s (burst 1)"
        assert controller.quota_denied == 1

    def test_unknown_tenant_rejected(self):
        controller = _controller()
        with pytest.raises(ConfigError):
            controller.offer(0, "stranger", 0.0)

    def test_modes_follow_oldest_queue_delay(self):
        controller = _controller()
        controller.offer(0, "bronze", 0.0)
        assert controller.evaluate(0.1) == []
        assert controller.mode is AdmissionMode.NORMAL
        controller.evaluate(1.0)  # oldest delay 1.0 > target 0.5
        assert controller.mode is AdmissionMode.BROWNOUT
        assert controller.brownout_active
        assert controller.brownout_entries == 1
        controller.pop_dispatchable()
        controller.evaluate(1.5)  # queue empty: delay 0
        assert controller.mode is AdmissionMode.NORMAL
        assert not controller.brownout_active

    def test_shed_drops_lowest_tier_first_never_tier0(self):
        controller = _controller()
        controller.offer(0, "gold", 0.0)
        controller.offer(1, "bronze", 0.0)
        sheds = controller.evaluate(3.0)  # delay 3.0 > shed 2.0
        assert controller.mode is AdmissionMode.SHED
        assert [entry.tenant for entry, _ in sheds] == ["bronze"]
        (entry, reason), = sheds
        assert reason == "overload: queue delay 3.000s > 2s, tier 2 shed first"
        # Tier 0 survives in the queue even though it is just as old.
        assert [e.tenant for _, e in controller.wfq.peek_items()] == ["gold"]
        assert controller.queue_sheds_by_tier == [0, 0, 1]

    def test_hard_bound_sheds_any_tier(self):
        controller = _controller()
        controller.offer(0, "gold", 0.0)
        sheds = controller.evaluate(11.0)  # > max_queue_delay 10.0
        (entry, reason), = sheds
        assert entry.tenant == "gold"
        assert reason.startswith("admission-timeout: queued 11.000s")
        assert controller.queued == 0

    def test_mode_transitions_are_logged(self):
        controller = _controller()
        controller.offer(0, "bronze", 0.0)
        controller.evaluate(1.0)
        assert controller.mode_log == [
            "t=1 normal -> brownout (queue delay 1.000s)"
        ]

    def test_brownout_caps_output_tokens(self):
        controller = _controller(policy=AdmissionPolicy(
            brownout_max_new_tokens=16, max_queue_delay=10.0
        ))
        assert controller.cap_output_tokens(128) == 128
        controller.offer(0, "bronze", 0.0)
        controller.evaluate(1.0)
        assert controller.cap_output_tokens(128) == 16
        assert controller.cap_output_tokens(8) == 8

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            AdmissionPolicy(target_queue_delay=0.0)
        with pytest.raises(ConfigError):
            AdmissionPolicy(target_queue_delay=1.0, shed_queue_delay=1.0)
        with pytest.raises(ConfigError):
            AdmissionPolicy(shed_queue_delay=2.0, max_queue_delay=2.0)
        with pytest.raises(ConfigError):
            AdmissionPolicy(brownout_max_new_tokens=0)
        with pytest.raises(ConfigError):
            AdmissionPolicy(max_inflight_per_node=0)


class TestUpgradePlan:
    def test_from_spec(self):
        plan = UpgradePlan.from_spec("start=3,restart=1.5,poll=0.5")
        assert plan == UpgradePlan(start=3.0, restart_delay=1.5, poll_interval=0.5)

    def test_from_spec_defaults(self):
        assert UpgradePlan.from_spec("start=2") == UpgradePlan(start=2.0)

    @pytest.mark.parametrize("spec", ["start", "start=x", "when=2"])
    def test_from_spec_rejects_malformed(self, spec):
        with pytest.raises(ConfigError):
            UpgradePlan.from_spec(spec)

    def test_validation(self):
        with pytest.raises(ConfigError):
            UpgradePlan(start=-1.0)
        with pytest.raises(ConfigError):
            UpgradePlan(restart_delay=-0.5)
        with pytest.raises(ConfigError):
            UpgradePlan(poll_interval=0.0)

    def test_dict_round_trip(self):
        plan = UpgradePlan(start=2.0, restart_delay=0.75, poll_interval=0.5)
        assert UpgradePlan.from_dict(plan.to_dict()) == plan


class TestRetryPolicyConfigErrors:
    """The retry knobs reject nonsense with typed ConfigErrors."""

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"max_backoff": 0.0},
        {"max_backoff": -2.0},
        {"jitter": 1.5},
        {"backoff_multiplier": 0.5},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)

    def test_config_error_is_still_a_value_error(self):
        # Historical callers catch ValueError; the typed error must not
        # break them.
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)


class TestGatewayPickRegression:
    def _gateway(self, n=2):
        gateway = Gateway("round-robin")
        for i in range(n):
            gateway.register(Node(
                f"n{i}", NodeClass(name="gaudi2", device="gaudi2", tp=2)
            ))
        return gateway

    def test_none_pick_leaves_round_robin_cursor_alone(self):
        gateway = self._gateway()
        # Fully excluded under require_untried: no candidate, and the
        # failed pick must not perturb routing for later requests.
        assert gateway.pick(
            exclude={"n0", "n1"}, require_untried=True
        ) is None
        assert gateway.pick().name == "n0"
        assert gateway.pick().name == "n1"

    def test_fully_avoided_pool_returns_none_without_advancing(self):
        gateway = self._gateway()
        assert gateway.pick(avoid={"n0", "n1"}) is None
        assert gateway.pick().name == "n0"

    def test_exclude_fallback_still_reuses_tried_nodes(self):
        # Without require_untried, a retry may return to a tried node
        # rather than shed a servable request (historical behavior).
        gateway = self._gateway()
        assert gateway.pick(exclude={"n0", "n1"}).name == "n0"


class TestAdmissionCounters:
    def test_render_counters_golden(self):
        before = snapshot_counters()
        reset_counters()
        try:
            controller = _controller(tenants=(
                TenantSpec(name="metered", tier=2, quota_rate=1.0, quota_burst=1.0),
            ))
            controller.offer(0, "metered", 0.0)   # enqueued
            controller.offer(1, "metered", 0.0)   # quota denied
            controller.pop_dispatchable()          # dequeued
            breaker = CircuitBreaker(BreakerPolicy(
                failure_threshold=1, cooldown=1.0
            ))
            breaker.record_failure(0.0)            # opened
            breaker.on_dispatch(2.0)               # probe
            breaker.record_success()               # closed
            bump_counter("breaker_short_circuits")
            bump_counter("upgrade_drains")
            assert render_counters() == "\n".join([
                "  quota      : 1 denied by token buckets",
                "  fair queue : 1 enqueued | 1 dequeued",
                "  overload   : 0 brownout entries | 0 shed",
                "  breakers   : 1 opened | 1 probes | 1 closed | "
                "1 short-circuits",
                "  upgrades   : 1 node drains",
            ])
        finally:
            reset_counters()
            for key, value in before.items():
                bump_counter(key, value)

    def test_repro_top_surfaces_admission_section(self, capsys):
        from repro.cli import main

        code = main(["top", "--requests", "8", "--samples", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Admission / tenant isolation:" in out
        assert "denied by token buckets" in out
