"""GEMM kernel wrappers and sweeps (Figures 4, 5)."""

import pytest

from repro.kernels.gemm import (
    GemmPoint,
    operational_intensity,
    run_gemm,
    sweep_irregular,
    sweep_square,
    utilization_grid,
)
from repro.hw.spec import DType


class TestOperationalIntensity:
    def test_square_gemm_intensity(self):
        # 2 N^3 flops over 3 N^2 x 2 bytes.
        assert operational_intensity(1024, 1024, 1024, DType.BF16) == pytest.approx(
            2 * 1024 / 6
        )

    def test_irregular_gemm_low_intensity(self):
        square = operational_intensity(4096, 4096, 4096, DType.BF16)
        skinny = operational_intensity(4096, 4096, 16, DType.BF16)
        assert skinny < square / 10


class TestRunGemm:
    def test_point_fields(self, gaudi):
        point = run_gemm(gaudi, 1024, 1024, 1024)
        assert isinstance(point, GemmPoint)
        assert point.device == "Gaudi-2"
        assert point.achieved_tflops > 0
        assert point.config_label.startswith("MME")

    def test_gaudi_8192_matches_paper(self, gaudi):
        point = run_gemm(gaudi, 8192, 8192, 8192)
        assert point.achieved_tflops == pytest.approx(429, abs=5)

    def test_gaudi_beats_a100_on_irregular(self, gaudi, a100):
        for size in (2048, 8192):
            pg = run_gemm(gaudi, size, size, 16)
            pa = run_gemm(a100, size, size, 16)
            assert pg.achieved_tflops > pa.achieved_tflops


class TestSweeps:
    def test_square_sweep_covers_sizes(self, gaudi):
        points = sweep_square(gaudi, sizes=(256, 1024))
        assert [(p.m, p.n) for p in points] == [(256, 256), (1024, 1024)]

    def test_irregular_sweep_fixes_n(self, a100):
        points = sweep_irregular(a100, sizes=(1024,))
        assert points[0].n == 16

    def test_utilization_grid_shape(self, gaudi):
        grid = utilization_grid(gaudi, (512, 1024), (512, 1024, 2048), k=2048)
        assert len(grid) == 2
        assert len(grid[0]) == 3
        assert all(0 < u <= 1 for row in grid for u in row)

    def test_utilization_grows_with_size(self, gaudi):
        grid = utilization_grid(gaudi, (256, 4096), (256, 4096), k=4096)
        assert grid[1][1] > grid[0][0]
