"""Property-based tests over the surrogate predictors.

Random in-domain shapes, not sweep points: the fitted GEMM surrogate
must stay within its certificate tolerance of the exact model, and it
must inherit the exact model's monotonicity in the batch and token
(sequence) dimensions -- a fitted fast path that reorders design-space
cells would be worse than useless.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.backend import get_backend
from repro.surrogate import get_surrogate_model

_DIMS = st.integers(4, 14).map(lambda p: 2**p)
_ODD_DIMS = st.integers(16, 16384)
_BATCHES = st.sampled_from([1, 2, 4, 8, 16])


def _model():
    return get_surrogate_model("gaudi2")


def _exact():
    return get_backend("gaudi2", fresh=True)


class TestWithinCertificateTolerance:
    @given(m=_ODD_DIMS, k=_ODD_DIMS, n=_ODD_DIMS, batch=_BATCHES)
    @settings(max_examples=60, deadline=None)
    def test_gemm_tracks_exact(self, m, k, n, batch):
        model = _model()
        predicted = float(model.gemm_predict(m, k, n, batch)["time"])
        exact = _exact().gemm(m, k, n, batch=batch).time
        assert abs(predicted - exact) / exact <= model.tolerance("gemm")

    @given(tp=st.sampled_from([1, 2, 4, 8]),
           batch=st.integers(1, 64),
           seq=st.integers(128, 16384))
    @settings(max_examples=40, deadline=None)
    def test_attention_tracks_exact(self, tp, batch, seq):
        from repro.surrogate.surfaces import SURFACES

        model = _model()
        predicted = float(model.attention_time(tp, batch, seq))
        exact = SURFACES["attention"].evaluate(_exact(), (tp, batch, seq))
        assert abs(predicted - exact) / exact <= model.tolerance("attention")

    @given(tp=st.sampled_from([1, 2, 4, 8]),
           batch=st.integers(1, 128),
           context=st.integers(128, 16384))
    @settings(max_examples=40, deadline=None)
    def test_paged_tracks_exact(self, tp, batch, context):
        from repro.surrogate.surfaces import exact_paged_time

        model = _model()
        predicted = float(model.paged_time(tp, batch, context))
        exact = exact_paged_time(_exact(), tp, batch, context)
        assert abs(predicted - exact) / exact <= model.tolerance("paged")


class TestMonotonicity:
    @given(m=_DIMS, k=_DIMS, n=_DIMS, batch=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_batch(self, m, k, n, batch):
        model = _model()
        t1 = float(model.gemm_predict(m, k, n, batch)["time"])
        t2 = float(model.gemm_predict(m, k, n, 2 * batch)["time"])
        assert t1 <= t2 * (1 + 1e-9)

    @given(m=_DIMS, k=_DIMS, n=_DIMS)
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_tokens(self, m, k, n):
        """m is the token count in every serving GEMM: more tokens in a
        step can never be predicted faster."""
        model = _model()
        t1 = float(model.gemm_predict(m, k, n, 1)["time"])
        t2 = float(model.gemm_predict(2 * m, k, n, 1)["time"])
        assert t1 <= t2 * (1 + 1e-9)

    @given(tp=st.sampled_from([1, 2, 4, 8]),
           batch=st.sampled_from([1, 2, 4, 8, 16, 32]),
           seq=st.sampled_from([128, 512, 2048, 8192]))
    @settings(max_examples=40, deadline=None)
    def test_attention_monotone_in_seq(self, tp, batch, seq):
        model = _model()
        t1 = float(model.attention_time(tp, batch, seq))
        t2 = float(model.attention_time(tp, batch, 2 * seq))
        assert t1 <= t2 * (1 + 1e-9)
