"""Every headline scalar of the paper, measured vs reported.

The tolerance bands are deliberately wide: our substrate is a
performance model, not the authors' testbed, so we assert the *shape*
(who wins and by roughly what factor), with each claim's band recorded
in EXPERIMENTS.md.
"""

import pytest

from repro.figures import run_figure


@pytest.fixture(scope="module")
def headline():
    return run_figure("headline", fast=True).summary


class TestEmbeddingClaims:
    def test_sdk_operator_well_below_fbgemm(self, headline):
        """Paper: the SDK embedding operator reaches ~37 % of FBGEMM."""
        assert 0.15 < headline["sdk_embedding_vs_a100"] < 0.55

    def test_custom_single_table_beats_sdk(self, headline):
        """Paper: the custom SingleTable is ~1.6x the SDK operator."""
        assert 1.3 < headline["custom_single_over_sdk"] < 3.0

    def test_batched_near_parity_large_vectors(self, headline):
        """Paper: ~95 % of A100 for >=256 B vectors."""
        assert 0.7 < headline["batched_vs_a100_large_vectors"] < 1.1

    def test_batched_half_speed_small_vectors(self, headline):
        """Paper: ~47 % of A100 below 256 B."""
        assert 0.3 < headline["batched_vs_a100_small_vectors"] < 0.6


class TestVllmClaims:
    def test_opt_over_base(self, headline):
        """Paper: 7.4x average at 0 % padding."""
        assert 4.0 < headline["vllm_opt_over_base"] < 10.0

    def test_opt_over_base_with_padding(self, headline):
        """Paper: up to 55.7x with 90 % padding."""
        assert 25.0 < headline["vllm_opt_over_base_max"] < 70.0

    def test_paged_attention_vs_a100(self, headline):
        """Paper: vLLM_opt reaches ~45 % of the CUDA kernel."""
        assert 0.35 < headline["vllm_opt_vs_a100_kernel"] < 0.65

    def test_end_to_end_parity(self, headline):
        """Paper: comparable end-to-end serving throughput."""
        assert 0.8 < headline["vllm_e2e_throughput_ratio"] < 1.6


class TestEndToEndClaims:
    def test_llm_speedup(self, headline):
        """Paper: ~1.47x single-device LLM speedup."""
        assert 1.2 < headline["llm_single_device_speedup"] < 1.7

    def test_llm_energy_efficiency(self, headline):
        """Paper: ~48 % better single-device energy efficiency."""
        assert 1.2 < headline["llm_single_device_energy_eff"] < 1.8

    def test_recsys_slowdown(self, headline):
        """Paper: ~20 % average RecSys slowdown."""
        assert 0.6 < headline["recsys_mean_speedup"] < 1.05

    def test_recsys_energy_deficit(self, headline):
        """Paper: ~28 % average RecSys energy-efficiency deficit.  The
        fast-mode grid leans toward Gaudi's friendly corners, so the
        band only asserts Gaudi gains no energy edge."""
        assert headline["recsys_mean_energy_eff"] < 1.2


class TestDirectionalConsistency:
    """The paper's key takeaways as orderings."""

    def test_llm_favours_gaudi_recsys_favours_a100(self, headline):
        assert headline["llm_single_device_speedup"] > 1.0
        assert headline["recsys_mean_speedup"] < 1.0

    def test_vllm_gap_narrows_end_to_end(self, headline):
        """Amdahl's law: the 2.2x attention gap shrinks end to end."""
        assert (
            headline["vllm_e2e_throughput_ratio"]
            > headline["vllm_opt_vs_a100_kernel"]
        )
