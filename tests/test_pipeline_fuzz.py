"""Property-based fuzzing of the VLIW pipeline simulator.

Random instruction sequences must never violate the machine's basic
invariants: issue bounded below by slot pressure, monotone in work,
deterministic, and consistent under extrapolation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.spec import DType
from repro.tpc.isa import Instruction, Opcode, Slot
from repro.tpc.pipeline import VliwPipeline

_PIPE = VliwPipeline()

_OPCODES = [
    Opcode.LD_TNSR, Opcode.LD_G, Opcode.ST_TNSR,
    Opcode.ADD, Opcode.MUL, Opcode.MAC, Opcode.MOV,
    Opcode.S_ADD,
]


@st.composite
def instruction(draw):
    opcode = draw(st.sampled_from(_OPCODES))
    registers = [f"v{i}" for i in range(8)]
    dest = None
    sources = ()
    access = 0
    if opcode in (Opcode.LD_TNSR, Opcode.LD_G):
        dest = draw(st.sampled_from(registers + [None]))
        access = draw(st.sampled_from([32, 64, 128, 256]))
    elif opcode is Opcode.ST_TNSR:
        sources = (draw(st.sampled_from(registers)),)
        access = 256
    elif opcode is Opcode.S_ADD:
        dest = draw(st.sampled_from(registers))
    else:
        dest = draw(st.sampled_from(registers))
        n_sources = draw(st.integers(1, 2))
        sources = tuple(draw(st.sampled_from(registers)) for _ in range(n_sources))
    return Instruction(
        opcode=opcode, dest=dest, sources=sources, dtype=DType.BF16,
        access_bytes=access,
    )


bodies = st.lists(instruction(), min_size=1, max_size=12)


class TestPipelineInvariants:
    @given(body=bodies, iterations=st.integers(1, 40))
    @settings(max_examples=80, deadline=None)
    def test_cycles_bounded_below_by_slot_pressure(self, body, iterations):
        result = _PIPE.simulate(body, iterations)
        for slot in Slot:
            slot_instructions = sum(1 for i in body if i.slot is slot)
            assert result.total_cycles >= slot_instructions * iterations

    @given(body=bodies, iterations=st.integers(1, 30))
    @settings(max_examples=60, deadline=None)
    def test_cycles_monotone_in_iterations(self, body, iterations):
        shorter = _PIPE.simulate(body, iterations).total_cycles
        longer = _PIPE.simulate(body, iterations + 5).total_cycles
        assert longer >= shorter

    @given(body=bodies, iterations=st.integers(1, 30))
    @settings(max_examples=60, deadline=None)
    def test_deterministic(self, body, iterations):
        first = _PIPE.simulate(body, iterations)
        second = _PIPE.simulate(body, iterations)
        assert first.total_cycles == second.total_cycles

    @given(body=bodies)
    @settings(max_examples=40, deadline=None)
    def test_extrapolation_close_to_exact(self, body):
        """The steady-state shortcut must track the exact simulation."""
        exact = _PIPE._simulate_exact(body, 120)
        estimated = _PIPE.simulate(body, 120).total_cycles
        assert abs(estimated - exact) / exact < 0.2

    @given(body=bodies, iterations=st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_accounting_non_negative(self, body, iterations):
        result = _PIPE.simulate(body, iterations)
        assert result.bytes_per_iteration >= 0
        assert result.moved_bytes_per_iteration >= result.bytes_per_iteration
        assert result.flops_per_iteration >= 0
