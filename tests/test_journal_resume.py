"""Crash-safe journaling, worker-death retry, and bit-identical resume."""

import json
import os
import subprocess
import sys

import pytest

from repro.audit import JournalError, WorkerRetryExhausted
from repro.core.journal import RunJournal, canonical_json, checksum
from repro.core.parallel import map_with_retries
from repro.core.reproduce import DIE_EXIT_CODE, reproduce, resume
from repro.hw import get_device
from repro.models.llama import DecodeAttention, LLAMA_3_1_8B, LlamaCostModel
from repro.serving import LlmServingEngine, fixed_length_requests
from repro.serving.loadgen import run_load_sweep

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestJournal:
    def test_roundtrip(self, tmp_path):
        journal = RunJournal(tmp_path / "run")
        journal.write_header({"tool": "t", "seed": 1})
        journal.append("point-0000", {"value": 1.5})
        journal.append("point-0001", {"value": [1, 2, 3]})
        header, points, skipped = RunJournal(tmp_path / "run").load()
        assert header == {"tool": "t", "seed": 1}
        assert points == {"point-0000": {"value": 1.5},
                          "point-0001": {"value": [1, 2, 3]}}
        assert skipped == 0

    def test_directory_or_file_path(self, tmp_path):
        assert RunJournal(tmp_path).path == tmp_path / "journal.jsonl"
        explicit = tmp_path / "custom.jsonl"
        assert RunJournal(explicit).path == explicit

    def test_last_valid_write_wins(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.append("p", {"v": 1})
        journal.append("p", {"v": 2})
        assert journal.completed_keys() == {"p": {"v": 2}}

    def test_corrupt_lines_skipped(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.write_header({"tool": "t"})
        journal.append("good", {"v": 1})
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "point", "key": "torn", "crc": 0, "pay')
            handle.write("\n")
            handle.write('{"kind": "point", "key": "badcrc", "crc": 12345, '
                         '"payload": {"v": 9}}\n')
            handle.write("not json at all\n")
        header, points, skipped = journal.load()
        assert header == {"tool": "t"}
        assert points == {"good": {"v": 1}}
        assert skipped == 3

    def test_header_mismatch_rejected(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.write_header({"tool": "t", "seed": 1})
        journal.write_header({"tool": "t", "seed": 1})  # idempotent
        with pytest.raises(JournalError):
            journal.write_header({"tool": "t", "seed": 2})

    def test_reserved_keys_rejected(self, tmp_path):
        journal = RunJournal(tmp_path)
        with pytest.raises(JournalError):
            journal.append("header", {})
        with pytest.raises(JournalError):
            journal.append("", {})

    def test_checksum_is_canonical(self):
        assert checksum({"b": 1, "a": 2}) == checksum({"a": 2, "b": 1})
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


# -- worker-death retry --------------------------------------------------
# Pool tasks must be top-level so they pickle.

def _double(task):
    return task * 2


def _die_once(task):
    """Kill the worker the first time; succeed after the marker exists."""
    marker, value = task
    if value == 0 and not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("died")
        os._exit(1)
    return value * 2


def _always_die(task):
    os._exit(1)


def _raise(task):
    raise ValueError(f"task {task} is bad")


class TestMapWithRetries:
    def test_serial_path(self):
        seen = []
        results = map_with_retries(
            _double, [1, 2, 3], workers=1,
            on_result=lambda i, r: seen.append((i, r)),
        )
        assert results == [2, 4, 6]
        assert seen == [(0, 2), (1, 4), (2, 6)]

    def test_worker_death_is_retried(self, tmp_path):
        marker = str(tmp_path / "died-once")
        tasks = [(marker, value) for value in range(4)]
        results = map_with_retries(
            _die_once, tasks, workers=2, max_retries=2, backoff_base=0.01
        )
        assert results == [0, 2, 4, 6]
        assert os.path.exists(marker)

    def test_persistent_death_exhausts_budget(self):
        with pytest.raises(WorkerRetryExhausted):
            map_with_retries(
                _always_die, [1, 2], workers=2, max_retries=1, backoff_base=0.01
            )

    def test_task_exceptions_propagate_unretried(self):
        with pytest.raises(ValueError, match="task 2 is bad"):
            map_with_retries(_raise, [2], workers=2, max_retries=5)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            map_with_retries(_double, [1], max_retries=-1)


# -- sweep journaling ----------------------------------------------------

def _sweep_engine():
    return LlmServingEngine(
        LlamaCostModel(LLAMA_3_1_8B, get_device("gaudi2")),
        DecodeAttention.PAGED_OPT,
        max_decode_batch=8,
    )


def _sweep_requests():
    return fixed_length_requests(10, input_len=128, output_len=16)


def _poisoned_engine():
    raise AssertionError("factory must not run for journal-reused points")


class TestSweepJournal:
    RATES = [2.0, 400.0]

    def test_completed_points_are_reused(self, tmp_path):
        first = run_load_sweep(
            engine_factory=_sweep_engine, request_factory=_sweep_requests,
            rates=self.RATES, seed=5, journal=tmp_path,
        )
        # Every point is journaled, so a re-run touches no factory at all.
        second = run_load_sweep(
            engine_factory=_poisoned_engine, request_factory=_poisoned_engine,
            rates=self.RATES, seed=5, journal=tmp_path,
        )
        assert first == second

    def test_journaled_matches_unjournaled(self, tmp_path):
        plain = run_load_sweep(
            engine_factory=_sweep_engine, request_factory=_sweep_requests,
            rates=self.RATES, seed=5,
        )
        journaled = run_load_sweep(
            engine_factory=_sweep_engine, request_factory=_sweep_requests,
            rates=self.RATES, seed=5, journal=tmp_path,
        )
        assert plain == journaled

    def test_partial_journal_runs_only_missing_points(self, tmp_path):
        full = run_load_sweep(
            engine_factory=_sweep_engine, request_factory=_sweep_requests,
            rates=self.RATES, seed=5, journal=tmp_path / "full",
        )
        # Seed a second journal with only point 0, then complete it.
        partial = RunJournal(tmp_path / "partial")
        partial.write_header({
            "tool": "load_sweep", "rates": self.RATES, "seed": 5,
            "resilient": False,
        })
        partial.append("point-0000", full[0].to_dict())
        resumed = run_load_sweep(
            engine_factory=_sweep_engine, request_factory=_sweep_requests,
            rates=self.RATES, seed=5, journal=partial,
        )
        assert resumed == full

    def test_config_mismatch_rejected(self, tmp_path):
        run_load_sweep(
            engine_factory=_sweep_engine, request_factory=_sweep_requests,
            rates=self.RATES, seed=5, journal=tmp_path,
        )
        with pytest.raises(JournalError):
            run_load_sweep(
                engine_factory=_sweep_engine, request_factory=_sweep_requests,
                rates=self.RATES, seed=6, journal=tmp_path,
            )


# -- reproduce / resume --------------------------------------------------

FIGURE_IDS = ["table2", "fig04"]


def _run_cli(args, tmp, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env.pop("REPRO_TEST_DIE_AFTER_POINTS", None)
    env.pop("REPRO_WORKERS", None)
    if extra_env:
        env.update(extra_env)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=str(tmp), env=env, capture_output=True, text=True, timeout=600,
    )


class TestReproduceResume:
    def test_reproduce_writes_reports_and_journal(self, tmp_path):
        result = reproduce(tmp_path / "run", fast=True, figure_ids=FIGURE_IDS)
        assert sorted(result.ran) == sorted(FIGURE_IDS)
        assert result.reused == []
        assert result.report_txt.exists()
        assert result.report_json.exists()
        payload = json.loads(result.report_json.read_text())
        assert sorted(payload["figures"]) == sorted(FIGURE_IDS)
        assert payload["config"]["fast"] is True

    def test_second_run_reuses_journal(self, tmp_path):
        reproduce(tmp_path / "run", fast=True, figure_ids=FIGURE_IDS)
        again = reproduce(tmp_path / "run", fast=True, figure_ids=FIGURE_IDS)
        assert again.ran == []
        assert sorted(again.reused) == sorted(FIGURE_IDS)

    def test_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            reproduce(tmp_path / "run", figure_ids=["fig99"])

    def test_resume_requires_header(self, tmp_path):
        with pytest.raises(JournalError):
            resume(tmp_path / "empty")

    def test_crash_then_resume_is_bit_identical(self, tmp_path):
        """Kill the run after 1 journaled point; resume must reproduce the
        uninterrupted run's report files byte for byte."""
        baseline = tmp_path / "baseline"
        crashed = tmp_path / "crashed"
        ids = [flag for fid in FIGURE_IDS for flag in ("--id", fid)]

        done = _run_cli(["reproduce", "--out", str(baseline), *ids], tmp_path)
        assert done.returncode == 0, done.stderr

        died = _run_cli(
            ["reproduce", "--out", str(crashed), *ids], tmp_path,
            extra_env={"REPRO_TEST_DIE_AFTER_POINTS": "1"},
        )
        assert died.returncode == DIE_EXIT_CODE, died.stderr
        # Crash left the journal with header + 1 point and no reports.
        header, points, _ = RunJournal(crashed).load()
        assert header is not None
        assert len(points) == 1
        assert not (crashed / "report.txt").exists()

        resumed = _run_cli(["resume", str(crashed)], tmp_path)
        assert resumed.returncode == 0, resumed.stderr
        assert "[journal]" in resumed.stdout

        for name in ("report.txt", "report.json"):
            assert (crashed / name).read_bytes() == (baseline / name).read_bytes()
