"""Failure injection: the stack must fail loudly, never hang or corrupt."""

import pytest

from repro.models.llama import DecodeAttention, LLAMA_3_1_8B, LlamaCostModel
from repro.serving import (
    KvCacheError,
    LlmServingEngine,
    fixed_length_requests,
)
from repro.serving.capacity import compare_capacity, paged_capacity, static_capacity
from repro.serving.dataset import dynamic_sonnet_requests
from repro.serving.kv_cache import BlockManager


class TestOversizedPrompts:
    def test_prompt_larger_than_pool_rejected_at_submit(self, gaudi):
        engine = LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, gaudi),
            max_decode_batch=4,
            num_kv_blocks=4,
        )
        with pytest.raises(KvCacheError, match="never be scheduled"):
            engine.run(fixed_length_requests(1, input_len=10_000, output_len=5))

    def test_fitting_prompt_on_tiny_pool_completes(self, gaudi):
        engine = LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, gaudi),
            max_decode_batch=2,
            num_kv_blocks=8,
        )
        report = engine.run(fixed_length_requests(2, input_len=256, output_len=16))
        assert report.num_requests == 2

    def test_mixed_fit_and_unfit_fails_fast(self, gaudi):
        engine = LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, gaudi),
            max_decode_batch=2,
            num_kv_blocks=4,
        )
        requests = fixed_length_requests(1, input_len=128, output_len=4)
        requests += fixed_length_requests(1, input_len=9_000, output_len=4)
        requests[1].request_id = 1
        with pytest.raises(KvCacheError):
            engine.run(requests)


class TestPoolPressure:
    def test_heavy_preemption_still_terminates(self, gaudi):
        engine = LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, gaudi),
            DecodeAttention.PAGED_OPT,
            max_decode_batch=6,
            num_kv_blocks=20,
        )
        requests = fixed_length_requests(6, input_len=200, output_len=300)
        report = engine.run(requests)
        assert report.preemptions > 0
        assert all(r.done for r in requests)
        assert engine.block_manager.stats().allocated_blocks == 0

    def test_block_manager_rejects_negative_pool(self):
        with pytest.raises(ValueError):
            BlockManager(num_blocks=-1, block_size=128)


class TestCapacityAnalysis:
    def test_paged_beats_static_on_short_requests(self, gaudi):
        """The Section 4.2 motivation: fragmentation caps static batch."""
        model = LlamaCostModel(LLAMA_3_1_8B, gaudi)
        requests = dynamic_sonnet_requests(4096, seed=1)
        report = compare_capacity(LLAMA_3_1_8B, model, requests, max_model_len=4096)
        assert report.paged_capacity > 2 * report.static_capacity
        assert report.capacity_gain > 2.0

    def test_static_capacity_arithmetic(self):
        assert static_capacity(10_000, 4096) == 2
        with pytest.raises(ValueError):
            static_capacity(10_000, 0)

    def test_paged_capacity_admission_order(self):
        # pool of 4 blocks of 128: requests of 1, 2, 2 blocks -> 2 admitted
        assert paged_capacity(4 * 128, [100, 200, 200]) == 2

    def test_paged_capacity_waste_bounded(self):
        # 1-token requests still take a whole block each.
        assert paged_capacity(4 * 128, [1, 1, 1, 1, 1]) == 4

    def test_empty_requests_rejected(self):
        with pytest.raises(ValueError):
            paged_capacity(1024, [])
