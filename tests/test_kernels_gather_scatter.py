"""Gather/scatter microbenchmark (Figure 9)."""

import numpy as np
import pytest

from repro.kernels.gather_scatter import (
    reference_gather,
    reference_scatter,
    run_gather_scatter,
)

_FAST = dict(num_vectors=200_000)


class TestGaudiBehaviour:
    def test_large_vectors_near_random_ceiling(self, gaudi):
        result = run_gather_scatter(gaudi, 256, **_FAST)
        assert result.bandwidth_utilization == pytest.approx(0.68, abs=0.05)

    def test_sub_granule_waste(self, gaudi):
        """Utilization scales with vector_size / 256 below the granule."""
        u64 = run_gather_scatter(gaudi, 64, **_FAST).bandwidth_utilization
        u256 = run_gather_scatter(gaudi, 256, **_FAST).bandwidth_utilization
        assert u64 == pytest.approx(u256 / 4, rel=0.1)

    def test_scatter_rmw_penalty(self, gaudi):
        gather = run_gather_scatter(gaudi, 64, **_FAST)
        scatter = run_gather_scatter(gaudi, 64, is_scatter=True, **_FAST)
        assert scatter.bandwidth_utilization < gather.bandwidth_utilization

    def test_no_locality_benefit_from_small_fractions(self, gaudi):
        small = run_gather_scatter(gaudi, 128, fraction_accessed=0.05, **_FAST)
        full = run_gather_scatter(gaudi, 128, fraction_accessed=1.0, **_FAST)
        assert small.bandwidth_utilization == pytest.approx(
            full.bandwidth_utilization, rel=0.15
        )


class TestA100Behaviour:
    def test_paper_average_utilizations(self, a100):
        """Paper: ~72 % for >=256 B, ~36 % average for <=128 B."""
        large = [run_gather_scatter(a100, s, **_FAST).bandwidth_utilization
                 for s in (256, 512, 1024, 2048)]
        small = [run_gather_scatter(a100, s, **_FAST).bandwidth_utilization
                 for s in (16, 32, 64, 128)]
        assert sum(large) / 4 == pytest.approx(0.72, abs=0.04)
        assert sum(small) / 4 == pytest.approx(0.36, abs=0.06)

    def test_l2_resident_fraction_boosts_utilization(self, a100):
        hot = run_gather_scatter(a100, 128, fraction_accessed=0.02)
        cold = run_gather_scatter(a100, 128, fraction_accessed=1.0)
        assert hot.bandwidth_utilization > cold.bandwidth_utilization


class TestCrossDevice:
    def test_small_vector_gap_matches_paper(self, gaudi, a100):
        """Paper: a 2.4x gap for sub-256 B gathers."""
        gaudi_small = sum(
            run_gather_scatter(gaudi, s, **_FAST).bandwidth_utilization * 2.45
            for s in (16, 32, 64, 128)
        )
        a100_small = sum(
            run_gather_scatter(a100, s, **_FAST).bandwidth_utilization * 2.0
            for s in (16, 32, 64, 128)
        )
        assert a100_small / gaudi_small == pytest.approx(2.4, abs=0.7)

    def test_parity_at_large_vectors(self, gaudi, a100):
        rg = run_gather_scatter(gaudi, 1024, **_FAST)
        ra = run_gather_scatter(a100, 1024, **_FAST)
        ratio = (rg.bandwidth_utilization * 2.45) / (ra.bandwidth_utilization * 2.0)
        assert 0.85 < ratio < 1.4


class TestValidation:
    def test_invalid_vector_size(self, gaudi):
        with pytest.raises(ValueError):
            run_gather_scatter(gaudi, 0)

    def test_invalid_fraction(self, gaudi):
        with pytest.raises(ValueError):
            run_gather_scatter(gaudi, 256, fraction_accessed=0.0)
        with pytest.raises(ValueError):
            run_gather_scatter(gaudi, 256, fraction_accessed=1.5)


class TestFunctional:
    def test_gather_matches_numpy(self):
        table = np.arange(20.0).reshape(5, 4)
        idx = np.array([3, 1, 1])
        np.testing.assert_array_equal(reference_gather(table, idx), table[idx])

    def test_scatter_roundtrip(self):
        table = np.zeros((4, 2))
        rows = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = reference_scatter(table, np.array([0, 3]), rows)
        np.testing.assert_array_equal(out[[0, 3]], rows)
