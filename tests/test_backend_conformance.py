"""Backend conformance suite.

Every backend in the registry -- built-in or plugged in -- must satisfy
the same physical and API invariants: positive costs, monotone scaling,
roofline sanity, working fabric/power/smi surfaces, and memo-cache
equivalence.  The suite parametrizes over ``list_backends()`` so a
newly registered platform is held to the contract automatically.
"""

import pytest

from repro.audit.errors import ConfigError
from repro.hw.backend import (
    A100,
    DEFAULT_COMPARISON,
    GAUDI2,
    Backend,
    BackendInfo,
    BackendRegistry,
    comparison_backends,
    backend_info,
    get_backend,
    list_backends,
    resolve_backend,
)
from repro.hw.spec import DType, get_spec
from repro.surrogate.backend import ensure_registered

# The surrogate facades register lazily on first resolution; pull every
# built-in's surrogate in so the whole matrix below covers them too.
SURROGATE_BACKENDS = [
    ensure_registered(base) for base in ("gaudi2", "a100", "h100", "gaudi3")
]
ALL_BACKENDS = list_backends()


def _device(key):
    return get_backend(key)


# ---------------------------------------------------------------------------
# Protocol surface
# ---------------------------------------------------------------------------
class TestProtocol:
    @pytest.mark.parametrize("key", ALL_BACKENDS)
    def test_satisfies_backend_protocol(self, key):
        assert isinstance(_device(key), Backend)

    @pytest.mark.parametrize("key", ALL_BACKENDS)
    def test_capability_attributes(self, key):
        device = _device(key)
        assert device.family in ("gaudi", "cuda")
        assert device.smi_style in ("hl-smi", "nvidia-smi")
        assert 0.0 < device.attention_efficiency <= 1.0
        assert device.name == device.spec.name

    @pytest.mark.parametrize("key", ALL_BACKENDS)
    def test_family_matches_registration(self, key):
        assert _device(key).family == backend_info(key).family

    @pytest.mark.parametrize("key", ALL_BACKENDS)
    def test_decode_attention_is_valid(self, key):
        from repro.models.llama import DecodeAttention, default_decode_attention

        device = _device(key)
        assert default_decode_attention(device) is DecodeAttention(
            device.decode_attention
        )

    @pytest.mark.parametrize("key", ALL_BACKENDS)
    def test_peaks_positive(self, key):
        device = _device(key)
        assert device.peak_matrix_flops > 0
        assert device.peak_vector_flops > 0
        assert device.peak_bandwidth > 0
        assert device.kernel_launch_overhead >= 0


# ---------------------------------------------------------------------------
# GEMM cost model
# ---------------------------------------------------------------------------
class TestGemmInvariants:
    SHAPES = [(256, 256, 256), (1024, 1024, 1024), (4096, 4096, 4096),
              (8192, 8192, 16)]

    @pytest.mark.parametrize("key", ALL_BACKENDS)
    @pytest.mark.parametrize("shape", SHAPES)
    def test_costs_positive_and_bounded(self, key, shape):
        device = _device(key)
        m, k, n = shape
        result = device.gemm(m, k, n)
        assert result.time > 0
        assert result.achieved_flops > 0
        assert 0.0 < result.utilization <= 1.0
        assert result.config_label

    @pytest.mark.parametrize("key", ALL_BACKENDS)
    @pytest.mark.parametrize("shape", SHAPES)
    def test_roofline_sanity(self, key, shape):
        """Achieved throughput never exceeds the spec-sheet peak."""
        device = _device(key)
        m, k, n = shape
        result = device.gemm(m, k, n)
        assert result.achieved_flops <= device.peak_matrix_flops * (1 + 1e-9)

    @pytest.mark.parametrize("key", ALL_BACKENDS)
    @pytest.mark.parametrize("dim", ["m", "k", "n"])
    def test_monotone_in_each_dimension(self, key, dim):
        """Doubling one GEMM dimension never makes it faster."""
        device = _device(key)
        base = {"m": 1024, "k": 1024, "n": 1024}
        times = []
        for scale in (1, 2, 4):
            shape = dict(base)
            shape[dim] = base[dim] * scale
            times.append(device.gemm(shape["m"], shape["k"], shape["n"]).time)
        assert times[0] <= times[1] * (1 + 1e-9)
        assert times[1] <= times[2] * (1 + 1e-9)

    @pytest.mark.parametrize("key", ALL_BACKENDS)
    def test_monotone_in_batch(self, key):
        device = _device(key)
        t1 = device.gemm(512, 512, 512, batch=1).time
        t4 = device.gemm(512, 512, 512, batch=4).time
        assert t1 <= t4 * (1 + 1e-9)

    @pytest.mark.parametrize("key", ALL_BACKENDS)
    def test_matrix_utilization_matches_gemm(self, key):
        device = _device(key)
        assert device.matrix_utilization(2048, 2048, 2048) == pytest.approx(
            device.gemm(2048, 2048, 2048).utilization
        )

    @pytest.mark.parametrize("key", ALL_BACKENDS)
    def test_memo_cache_equivalence(self, key):
        """The cached singleton and a fresh instance agree exactly."""
        cached = get_backend(key)
        fresh = get_backend(key, fresh=True)
        assert fresh is not cached
        for m, k, n in self.SHAPES:
            a = cached.gemm(m, k, n)
            b = fresh.gemm(m, k, n)
            assert a.time == b.time
            assert a.achieved_flops == b.achieved_flops
            assert a.utilization == b.utilization


# ---------------------------------------------------------------------------
# Memory / vector / power / fabric surfaces
# ---------------------------------------------------------------------------
class TestPlatformSurfaces:
    @pytest.mark.parametrize("key", ALL_BACKENDS)
    def test_hbm_model(self, key):
        device = _device(key)
        assert device.hbm.stream_time(2**20) > 0
        # Random access never beats the streamed peak, and the device's
        # own min-access granularity is always fully efficient.
        assert device.hbm.random_bandwidth(device.spec.memory.min_access_bytes) \
            <= device.spec.memory.bandwidth * (1 + 1e-9)
        assert device.hbm.granularity_efficiency(
            device.spec.memory.min_access_bytes
        ) == pytest.approx(1.0)

    @pytest.mark.parametrize("key", ALL_BACKENDS)
    def test_vector_unit(self, key):
        device = _device(key)
        assert device.vector.elementwise_time(2**20, 1.0, DType.BF16) > 0

    @pytest.mark.parametrize("key", ALL_BACKENDS)
    def test_power_model_bounds(self, key):
        from repro.hw.power import ActivityProfile

        device = _device(key)
        idle = device.power.power(ActivityProfile(0.0, 0.0, 0.0))
        busy = device.power.power(ActivityProfile(1.0, 1.0, 1.0))
        assert 0 < idle < busy <= device.spec.power.tdp_watts * (1 + 1e-9)

    @pytest.mark.parametrize("key", ALL_BACKENDS)
    def test_collective_library(self, key):
        device = _device(key)
        library = device.collective_library(num_devices=8)
        result = library.all_reduce(2**20, 8)
        assert result.time > 0
        assert result.bus_bandwidth > 0

    @pytest.mark.parametrize("key", ALL_BACKENDS)
    def test_smi_readout(self, key):
        from repro.hw.power import ActivityProfile
        from repro.tools.smi import smi

        device = _device(key)
        sample = smi(device, ActivityProfile(0.5, 0.2, 0.4))
        assert sample.device == device.spec.name
        assert device.spec.name in sample.render()

    @pytest.mark.parametrize("key", ALL_BACKENDS)
    def test_attention_kernel_dispatch(self, key):
        from repro.kernels.attention import AttentionConfig, attention_time

        config = AttentionConfig(batch=4, q_heads=32, kv_heads=8,
                                 head_dim=128, seq_q=1024, seq_kv=1024)
        result = attention_time(_device(key), config)
        assert result.time > 0
        assert result.compute_time > 0 and result.memory_time > 0

    @pytest.mark.parametrize("key", ALL_BACKENDS)
    def test_spec_lookup_matches_instance(self, key):
        assert get_spec(key) is _device(key).spec


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_aliases_resolve_to_same_instance(self):
        for key in ALL_BACKENDS:
            info = backend_info(key)
            for alias in (*info.aliases, info.display_name, key.upper()):
                assert resolve_backend(alias) == key
                assert get_backend(alias) is get_backend(key)

    def test_unknown_backend_typed_error(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            resolve_backend("tpu-v5")

    def test_did_you_mean_suggestion(self):
        with pytest.raises(ConfigError, match="did you mean 'gaudi2'"):
            resolve_backend("guadi2")

    def test_error_is_still_a_value_error(self):
        with pytest.raises(ValueError):
            resolve_backend("tpu-v5")

    def test_duplicate_registration_rejected(self):
        registry = BackendRegistry()
        info = BackendInfo(key="x", display_name="X", vendor="V",
                           family="cuda", factory=lambda: None)
        registry.register(info)
        with pytest.raises(ConfigError, match="already registered"):
            registry.register(info)
        registry.register(info, replace=True)  # explicit replace allowed

    def test_comparison_backends_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKENDS", raising=False)
        assert comparison_backends() == DEFAULT_COMPARISON

    def test_comparison_backends_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKENDS", "hopper, gaudi2,gaudi2")
        assert comparison_backends() == ("h100", GAUDI2)

    def test_comparison_backends_env_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKENDS", "gaudi2,warp9")
        with pytest.raises(ConfigError, match="unknown backend"):
            comparison_backends()

    def test_default_comparison_is_the_paper_pair(self):
        assert DEFAULT_COMPARISON == (GAUDI2, A100)

    def test_builtin_set(self):
        assert {GAUDI2, A100, "h100", "gaudi3"} <= set(ALL_BACKENDS)
