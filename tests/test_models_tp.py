"""Tensor-parallel configuration."""

import pytest

from repro.comm import HcclLibrary, NcclLibrary
from repro.models.tensor_parallel import TensorParallelConfig


class TestConstruction:
    def test_degree_one_has_no_library(self, gaudi):
        tp = TensorParallelConfig.for_device(gaudi, 1)
        assert tp.library is None

    def test_device_selects_library(self, gaudi, a100):
        assert isinstance(TensorParallelConfig.for_device(gaudi, 4).library, HcclLibrary)
        assert isinstance(TensorParallelConfig.for_device(a100, 4).library, NcclLibrary)

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            TensorParallelConfig(degree=0)

    def test_unknown_device(self):
        with pytest.raises(TypeError):
            TensorParallelConfig.for_device(object(), 2)


class TestSharding:
    def test_shard_divides(self):
        assert TensorParallelConfig(degree=4).shard(8192) == 2048

    def test_indivisible_raises(self):
        with pytest.raises(ValueError, match="not divisible"):
            TensorParallelConfig(degree=3).shard(8192)

    def test_degree_one_identity(self):
        assert TensorParallelConfig(degree=1).shard(123) == 123


class TestAllReduce:
    def test_degree_one_is_free(self):
        assert TensorParallelConfig(degree=1).allreduce_time(1 << 20) == 0.0

    def test_allreduce_positive_and_monotone(self, gaudi):
        tp = TensorParallelConfig.for_device(gaudi, 8)
        small = tp.allreduce_time(1 << 16)
        large = tp.allreduce_time(1 << 24)
        assert 0 < small < large

    def test_gaudi_allreduce_improves_with_degree(self, gaudi):
        """The mesh delivers more bandwidth with more participants."""
        t2 = TensorParallelConfig.for_device(gaudi, 2).allreduce_time(32 << 20)
        t8 = TensorParallelConfig.for_device(gaudi, 8).allreduce_time(32 << 20)
        assert t8 < t2
