"""Decoder-layer operator graphs fed through the graph compiler."""

import pytest

from repro.graph import Engine, GraphCompiler
from repro.models.graphs import build_decoder_layer_graph
from repro.models.llama import LLAMA_3_1_8B
from repro.tools import GaudiProfiler


class TestGraphStructure:
    def test_op_list_mirrors_decoder_layer(self, gaudi):
        graph = build_decoder_layer_graph(LLAMA_3_1_8B, gaudi, batch=4, seq_len=512)
        names = [op.name for op in graph.ops]
        assert names == [
            "input_norm", "qkv_proj", "attention", "o_proj",
            "post_attention_norm", "up_gate_proj", "silu_mul", "down_proj",
        ]

    def test_gemms_carry_shapes(self, gaudi):
        graph = build_decoder_layer_graph(LLAMA_3_1_8B, gaudi, batch=4, seq_len=512)
        qkv = next(op for op in graph.ops if op.name == "qkv_proj")
        assert qkv.annotations["gemm_shape"] == (1, 2048, 4096, 6144)

    def test_engines_alternate(self, gaudi):
        graph = build_decoder_layer_graph(LLAMA_3_1_8B, gaudi, batch=4, seq_len=512)
        engines = [op.engine for op in graph.ops]
        # 4 projection GEMMs + the attention block on the MME side.
        assert engines.count(Engine.MME) == 5
        assert engines.count(Engine.TPC) == 3

    def test_invalid_shape_rejected(self, gaudi):
        with pytest.raises(ValueError):
            build_decoder_layer_graph(LLAMA_3_1_8B, gaudi, batch=0, seq_len=512)


class TestCompilation:
    def test_compiler_pipelines_the_layer(self, gaudi):
        graph = build_decoder_layer_graph(LLAMA_3_1_8B, gaudi, batch=8, seq_len=1024)
        optimized = GraphCompiler().compile(graph)
        naive = GraphCompiler(enable_fusion=False, enable_pipelining=False).compile(graph)
        assert optimized.total_time < naive.total_time
        assert any(e.pipelined for e in optimized.timeline.entries)

    def test_mme_configs_annotated(self, gaudi):
        graph = build_decoder_layer_graph(LLAMA_3_1_8B, gaudi, batch=8, seq_len=1024)
        compiled = GraphCompiler(enable_pipelining=False).compile(graph)
        annotated = [
            op for op in compiled.graph.ops if "mme_geometry" in op.annotations
        ]
        assert len(annotated) >= 3

    def test_compiled_time_in_line_with_cost_model(self, gaudi):
        """The graph path and the direct cost-model walk must agree on
        magnitude for one layer."""
        from repro.models.llama import LlamaCostModel

        graph = build_decoder_layer_graph(LLAMA_3_1_8B, gaudi, batch=8, seq_len=1024)
        compiled = GraphCompiler().compile(graph)
        direct = LlamaCostModel(LLAMA_3_1_8B, gaudi).prefill(8, 1024)
        per_layer = direct.time / LLAMA_3_1_8B.num_layers
        assert compiled.total_time == pytest.approx(per_layer, rel=0.5)

    def test_profiler_traces_the_layer(self, gaudi):
        graph = build_decoder_layer_graph(LLAMA_3_1_8B, gaudi, batch=8, seq_len=1024)
        compiled = GraphCompiler().compile(graph)
        report = GaudiProfiler().profile(compiled)
        assert report.occupancy(Engine.MME) > 0.3
        assert report.op_count < len(graph.ops)  # fusion + pipelining shrank it
