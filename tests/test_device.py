"""Device facades."""

import pytest

from repro.audit.errors import ConfigError
from repro.hw.device import A100Device, Gaudi2Device, get_device


class TestFactory:
    def test_get_device_types(self):
        assert isinstance(get_device("gaudi2"), Gaudi2Device)
        assert isinstance(get_device("a100"), A100Device)

    def test_cache_returns_same_instance(self):
        assert get_device("gaudi2") is get_device("hpu")

    def test_fresh_returns_new_instance(self):
        assert get_device("a100", fresh=True) is not get_device("a100", fresh=True)

    def test_unknown_raises_typed_config_error(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            get_device("mi300")

    def test_unknown_lists_registered_backends(self):
        with pytest.raises(ConfigError, match="gaudi2"):
            get_device("mi300")

    def test_typo_gets_did_you_mean(self):
        with pytest.raises(ConfigError, match="did you mean 'gaudi2'"):
            get_device("guadi2")


class TestCommonInterface:
    def test_gemm_returns_common_result(self, gaudi, a100):
        for device in (gaudi, a100):
            result = device.gemm(1024, 1024, 1024)
            assert result.time > 0
            assert 0 < result.utilization <= 1
            assert result.flops == 2 * 1024**3

    def test_batched_gemm_flops(self, gaudi):
        result = gaudi.gemm(128, 256, 128, batch=8)
        assert result.flops == 2 * 8 * 128 * 256 * 128

    def test_a100_active_fraction_always_one(self, a100):
        assert a100.gemm(64, 64, 64).active_mac_fraction == 1.0

    def test_gaudi_config_label_names_mme(self, gaudi):
        assert gaudi.gemm(512, 512, 512).config_label.startswith("MME")

    def test_a100_config_label_names_cta(self, a100):
        assert a100.gemm(512, 512, 512).config_label.startswith("CTA")

    def test_peaks_exposed(self, gaudi, a100):
        assert gaudi.peak_matrix_flops == pytest.approx(432e12)
        assert a100.peak_vector_flops == pytest.approx(39e12)
        assert gaudi.peak_bandwidth == pytest.approx(2.45e12)

    def test_matrix_utilization_helper(self, gaudi):
        assert gaudi.matrix_utilization(4096, 4096, 4096) == pytest.approx(
            gaudi.gemm(4096, 4096, 4096).utilization
        )

    def test_mme_configurability_toggle(self):
        fixed = Gaudi2Device(mme_configurable=False)
        flexible = Gaudi2Device(mme_configurable=True)
        assert fixed.gemm(16384, 16384, 64).time >= flexible.gemm(16384, 16384, 64).time

    def test_repr(self, gaudi, a100):
        assert "Gaudi-2" in repr(gaudi)
        assert "A100" in repr(a100)
