"""Graph IR, fusion, pipelining, scheduling, and the compiler facade."""

import pytest

from repro.graph import Engine, Graph, GraphCompiler
from repro.graph.fusion import fuse_elementwise
from repro.graph.ir import Op
from repro.graph.pipeliner import pipeline_mme_tpc, pipelined_duration
from repro.graph.scheduler import schedule
from repro.hw.spec import GAUDI2_SPEC


def _simple_graph():
    g = Graph("test")
    gemm = g.add_op("gemm", Engine.MME, 100e-6, 1e6, 1e6, sliceable=True)
    act = g.add_op("gelu", Engine.TPC, 40e-6, 1e6, 1e6, inputs=[gemm],
                   fusable=True, sliceable=True)
    bias = g.add_op("bias", Engine.TPC, 10e-6, 1e6, 1e6, inputs=[act],
                    fusable=True, sliceable=True)
    return g


class TestIr:
    def test_topological_insertion_enforced(self):
        g = Graph()
        dangling = Op("x", Engine.TPC, 1e-6)
        with pytest.raises(ValueError, match="not in the graph"):
            g.add_op("y", Engine.TPC, 1e-6, inputs=[dangling])

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Op("x", Engine.TPC, -1.0)

    def test_consumers(self):
        g = _simple_graph()
        gemm = g.ops[0]
        assert [c.name for c in g.consumers(gemm)] == ["gelu"]

    def test_validate_catches_reordering(self):
        g = _simple_graph()
        g.ops.reverse()
        with pytest.raises(ValueError, match="before its producer"):
            g.validate()

    def test_len_and_iter(self):
        g = _simple_graph()
        assert len(g) == 3
        assert [op.name for op in g] == ["gemm", "gelu", "bias"]


class TestFusion:
    def test_chain_collapses(self):
        fused = fuse_elementwise(_simple_graph())
        names = [op.name for op in fused.ops]
        assert names == ["gemm", "gelu+bias"]

    def test_fused_op_keeps_boundary_traffic(self):
        fused = fuse_elementwise(_simple_graph())
        merged = fused.ops[1]
        assert merged.input_bytes == 1e6
        assert merged.output_bytes == 1e6
        assert merged.compute_time == pytest.approx(50e-6)

    def test_multi_consumer_blocks_fusion(self):
        g = Graph()
        a = g.add_op("a", Engine.TPC, 1e-6, fusable=True)
        g.add_op("b", Engine.TPC, 1e-6, inputs=[a], fusable=True)
        g.add_op("c", Engine.TPC, 1e-6, inputs=[a], fusable=True)
        fused = fuse_elementwise(g)
        assert len(fused.ops) == 3

    def test_mme_ops_never_fused(self):
        g = Graph()
        a = g.add_op("a", Engine.MME, 1e-6, fusable=True)
        g.add_op("b", Engine.TPC, 1e-6, inputs=[a], fusable=True)
        fused = fuse_elementwise(g)
        assert len(fused.ops) == 2


class TestPipeliner:
    def test_pipelined_duration_formula(self):
        assert pipelined_duration(100e-6, 60e-6, slices=10, slice_overhead=0.0) == (
            pytest.approx(106e-6)
        )

    def test_pipelined_duration_beats_serial(self):
        assert pipelined_duration(100e-6, 60e-6) < 160e-6

    def test_invalid_slices_raise(self):
        with pytest.raises(ValueError):
            pipelined_duration(1.0, 1.0, slices=0)

    def test_mme_tpc_pair_merged(self):
        out = pipeline_mme_tpc(fuse_elementwise(_simple_graph()))
        assert len(out.ops) == 1
        assert out.ops[0].annotations["pipelined"] == ("gemm", "gelu+bias")

    def test_non_sliceable_pairs_left_alone(self):
        g = Graph()
        a = g.add_op("a", Engine.MME, 1e-6, sliceable=False)
        g.add_op("b", Engine.TPC, 1e-6, inputs=[a], sliceable=True)
        out = pipeline_mme_tpc(g)
        assert len(out.ops) == 2

    def test_tpc_tpc_pairs_not_pipelined(self):
        g = Graph()
        a = g.add_op("a", Engine.TPC, 1e-6, sliceable=True)
        g.add_op("b", Engine.TPC, 1e-6, inputs=[a], sliceable=True)
        out = pipeline_mme_tpc(g)
        assert len(out.ops) == 2


class TestScheduler:
    def test_serial_schedule_sums_durations(self):
        g = _simple_graph()
        timeline = schedule(g, GAUDI2_SPEC, op_dispatch_overhead=0.0)
        assert timeline.total_time >= 150e-6  # compute plus traffic

    def test_entries_contiguous(self):
        timeline = schedule(_simple_graph(), GAUDI2_SPEC)
        for prev, cur in zip(timeline.entries, timeline.entries[1:]):
            assert cur.start == pytest.approx(prev.end)

    def test_engine_busy_accounting(self):
        timeline = schedule(_simple_graph(), GAUDI2_SPEC)
        assert timeline.engine_busy(Engine.MME) == pytest.approx(100e-6, rel=0.01)
        assert timeline.engine_busy(Engine.TPC) == pytest.approx(50e-6, rel=0.01)

    def test_activity_profile_bounded(self):
        timeline = schedule(_simple_graph(), GAUDI2_SPEC)
        profile = timeline.activity_profile(GAUDI2_SPEC)
        assert 0 <= profile.matrix_busy <= 1
        assert 0 <= profile.memory_util <= 1


class TestCompiler:
    def test_full_pipeline_faster_than_unoptimized(self):
        optimized = GraphCompiler().compile(_simple_graph())
        naive = GraphCompiler(enable_fusion=False, enable_pipelining=False).compile(
            _simple_graph()
        )
        assert optimized.total_time < naive.total_time

    def test_fusion_alone_helps(self):
        fused = GraphCompiler(enable_pipelining=False).compile(_simple_graph())
        naive = GraphCompiler(enable_fusion=False, enable_pipelining=False).compile(
            _simple_graph()
        )
        assert fused.total_time < naive.total_time

    def test_mme_annotation_pass(self):
        g = Graph()
        gemm = g.add_op("gemm", Engine.MME, 1e-6, sliceable=False)
        gemm.annotations["gemm_shape"] = (1, 512, 4096, 64)
        compiled = GraphCompiler(enable_pipelining=False).compile(g)
        annotated = compiled.graph.ops[0]
        assert "mme_geometry" in annotated.annotations

    def test_energy_positive(self):
        compiled = GraphCompiler().compile(_simple_graph())
        assert compiled.energy() > 0
        assert compiled.average_power() >= GAUDI2_SPEC.power.idle_watts

    def test_op_counts(self):
        compiler = GraphCompiler()
        counts = compiler.num_ops_by_engine(_simple_graph())
        assert counts[Engine.MME] == 1
        assert counts[Engine.TPC] == 2
