"""STREAM kernels (Figure 8) -- timing shapes and functional semantics."""

import numpy as np
import pytest

from repro.kernels.stream import StreamOp, reference_result, run_stream

_N = 1_200_000  # small enough to keep tests fast


class TestOpProperties:
    def test_flops_per_element(self):
        assert StreamOp.ADD.flops_per_element == 1
        assert StreamOp.SCALE.flops_per_element == 1
        assert StreamOp.TRIAD.flops_per_element == 2

    def test_stream_counts(self):
        assert StreamOp.ADD.num_streams == 3
        assert StreamOp.SCALE.num_streams == 2
        assert StreamOp.TRIAD.num_streams == 3

    def test_only_triad_uses_fma(self):
        assert StreamOp.TRIAD.uses_fma
        assert not StreamOp.ADD.uses_fma


class TestGaudiShapes:
    def test_granularity_cliff_below_256b(self, gaudi):
        """Figure 8(a): throughput collapses below 256 B accesses."""
        low = run_stream(gaudi, StreamOp.SCALE, _N, access_bytes=32, num_cores=1)
        high = run_stream(gaudi, StreamOp.SCALE, _N, access_bytes=256, num_cores=1)
        assert high.achieved_gflops > 5 * low.achieved_gflops

    def test_saturates_above_512b(self, gaudi):
        """Wider accesses stop helping once the per-TPC port binds
        (above 256 B a wide access also acts as natural unrolling)."""
        a = run_stream(gaudi, StreamOp.SCALE, _N, access_bytes=512, num_cores=1)
        b = run_stream(gaudi, StreamOp.SCALE, _N, access_bytes=2048, num_cores=1)
        assert b.achieved_gflops == pytest.approx(a.achieved_gflops, rel=0.15)

    def test_scale_gains_most_from_unrolling(self, gaudi):
        """Figure 8(b): SCALE improves remarkably; ADD/TRIAD slightly."""
        gains = {}
        for op in StreamOp:
            base = run_stream(gaudi, op, _N, unroll=1, num_cores=1)
            unrolled = run_stream(gaudi, op, _N, unroll=4, num_cores=1)
            gains[op] = unrolled.achieved_gflops / base.achieved_gflops
        assert gains[StreamOp.SCALE] > gains[StreamOp.ADD]
        assert gains[StreamOp.SCALE] > gains[StreamOp.TRIAD]
        assert gains[StreamOp.SCALE] > 1.3
        assert gains[StreamOp.ADD] < 1.35

    def test_chip_saturation_levels(self, gaudi):
        """Figure 8(c): ~330 / ~530 / ~670 GFLOPS for ADD/SCALE/TRIAD."""
        targets = {StreamOp.ADD: 330, StreamOp.SCALE: 530, StreamOp.TRIAD: 670}
        for op, target in targets.items():
            result = run_stream(gaudi, op, 24_000_000, unroll=4)
            assert result.achieved_gflops == pytest.approx(target, rel=0.1)

    def test_intensity_saturation_split(self, gaudi):
        """Figure 8(d, f): ADD -> ~50 % of peak, TRIAD -> ~99 %."""
        add = run_stream(gaudi, StreamOp.ADD, _N, unroll=4, compute_chain=256)
        triad = run_stream(gaudi, StreamOp.TRIAD, _N, unroll=4, compute_chain=256)
        assert add.achieved_gflops / 11000 == pytest.approx(0.5, abs=0.05)
        assert triad.achieved_gflops / 11000 == pytest.approx(0.99, abs=0.05)


class TestA100Shapes:
    def test_a100_memory_bound_at_low_intensity(self, a100):
        result = run_stream(a100, StreamOp.TRIAD, _N)
        assert result.bottleneck == "hbm-bandwidth"

    def test_a100_triad_saturates_near_peak(self, a100):
        result = run_stream(a100, StreamOp.TRIAD, _N, compute_chain=512)
        assert result.achieved_gflops / 39000 == pytest.approx(1.0, abs=0.05)

    def test_a100_wins_compute_bound_gaudi_wins_memory_bound(self, gaudi, a100):
        """Figure 8(d-f): the crossover between the platforms."""
        mem_g = run_stream(gaudi, StreamOp.TRIAD, _N, unroll=4)
        mem_a = run_stream(a100, StreamOp.TRIAD, _N)
        assert mem_g.achieved_gflops > mem_a.achieved_gflops  # 1.2x bandwidth
        cmp_g = run_stream(gaudi, StreamOp.TRIAD, _N, unroll=4, compute_chain=256)
        cmp_a = run_stream(a100, StreamOp.TRIAD, _N, compute_chain=256)
        assert cmp_a.achieved_gflops > 3 * cmp_g.achieved_gflops  # 3.5x vector


class TestFunctional:
    def test_add_reference(self):
        a, b = np.array([1.0, 2.0]), np.array([3.0, 4.0])
        np.testing.assert_allclose(reference_result(StreamOp.ADD, a, b), [4.0, 6.0])

    def test_scale_reference(self):
        np.testing.assert_allclose(
            reference_result(StreamOp.SCALE, np.array([2.0]), scalar=3.0), [6.0]
        )

    def test_triad_reference(self):
        out = reference_result(StreamOp.TRIAD, np.array([2.0]), np.array([1.0]), scalar=3.0)
        np.testing.assert_allclose(out, [7.0])

    def test_binary_ops_require_two_arrays(self):
        with pytest.raises(ValueError):
            reference_result(StreamOp.ADD, np.array([1.0]))

    def test_kernel_functional_attached(self, gaudi):
        result = run_stream(gaudi, StreamOp.ADD, 1000, num_cores=1)
        assert result.op is StreamOp.ADD  # timing ran; semantics live in reference


class TestValidation:
    def test_invalid_elements(self, gaudi):
        with pytest.raises(ValueError):
            run_stream(gaudi, StreamOp.ADD, 0)

    def test_invalid_chain(self, gaudi):
        with pytest.raises(ValueError):
            run_stream(gaudi, StreamOp.ADD, 100, compute_chain=0)

    def test_unknown_device_type(self):
        with pytest.raises(TypeError):
            run_stream(object(), StreamOp.ADD, 100)
