"""Golden-equivalence and bookkeeping tests for the memoization layer.

The fast path is only admissible if it is invisible: cached and
cold-cache runs must produce byte-identical reports, the incremental
decode statistics must match a from-scratch rebuild, and unobserved
serving runs must not allocate observability state per step.
"""

import pytest

from repro.core import memo
from repro.core.memo import CostCache
from repro.core.parallel import resolve_worker_count
from repro.hw.device import A100Device, Gaudi2Device, get_device
from repro.hw.spec import DType
from repro.models.llama import (
    LLAMA_3_1_8B,
    DecodeAttention,
    DecodeBatchStats,
    LlamaCostModel,
)
from repro.serving import (
    LlmServingEngine,
    dynamic_sonnet_requests,
    fixed_length_requests,
)
from repro.serving.loadgen import sweep_seeds
from repro.serving.request import Request
from repro.serving.scheduler import ContinuousBatchingScheduler, _insort_by_arrival


def _fresh_devices():
    """Devices with cleared caches (the singletons persist across tests)."""
    memo.clear_caches()
    return get_device("gaudi2"), get_device("a100")


def _activity_tuple(activity):
    return (
        activity.matrix_seconds,
        activity.matrix_active_weighted,
        activity.vector_seconds,
        activity.memory_seconds,
        activity.comm_seconds,
    )


class TestCostCache:
    def test_miss_then_hit(self):
        cache = CostCache("test.cache", maxsize=4)
        assert cache.get(("a",)) is None
        cache.put(("a",), 1.0)
        assert cache.get(("a",)) == 1.0
        assert cache.misses == 1
        assert cache.hits == 1

    def test_lru_eviction_order(self):
        cache = CostCache("test.evict", maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" becomes LRU
        cache.put("c", 3)
        assert cache.evictions == 1
        assert cache.get("b") is None  # evicted
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_disabled_scope_bypasses(self):
        cache = CostCache("test.disabled", maxsize=4)
        cache.put("k", 1)
        with memo.disabled():
            assert cache.get("k") is None
            cache.put("k2", 2)
        assert cache.get("k") == 1
        assert cache.get("k2") is None

    def test_clear_resets_counters(self):
        cache = CostCache("test.clear", maxsize=4)
        cache.put("k", 1)
        cache.get("k")
        cache.get("missing")
        cache.clear()
        assert cache.stats() == {
            "hits": 0, "misses": 0, "evictions": 0, "entries": 0, "maxsize": 4,
        }

    def test_registry_stats_aggregate_by_name(self):
        a = CostCache("test.shared-name", maxsize=4)
        b = CostCache("test.shared-name", maxsize=4)
        a.put("k", 1)
        a.get("k")
        b.get("missing")
        entry = memo.cache_stats()["test.shared-name"]
        assert entry["caches"] == 2
        assert entry["hits"] == 1
        assert entry["misses"] == 1

    def test_publish_metrics_adds_only_deltas(self):
        from repro.obs.metrics import MetricsRegistry

        cache = CostCache("test.publish", maxsize=4)
        cache.get("miss")
        registry = MetricsRegistry()
        memo.publish_metrics(registry)
        memo.publish_metrics(registry)  # second publish must be a no-op
        assert registry.counter("memo.test.publish.misses").value == 1


class TestDeviceCacheHits:
    def test_gemm_repeats_hit(self):
        gaudi, _ = _fresh_devices()
        first = gaudi.gemm(512, 512, 512, DType.BF16)
        hits_before = gaudi._gemm_cache.hits
        second = gaudi.gemm(512, 512, 512, DType.BF16)
        assert gaudi._gemm_cache.hits == hits_before + 1
        assert first is second

    def test_gemm_cached_equals_uncached(self):
        gaudi, a100 = _fresh_devices()
        shapes = [(256, 4096, 1024), (4096, 4096, 4096), (33, 517, 129)]
        for device in (gaudi, a100):
            for m, k, n in shapes:
                warm = device.gemm(m, k, n, DType.BF16)
                warm2 = device.gemm(m, k, n, DType.BF16)
                with memo.disabled():
                    cold = device.gemm(m, k, n, DType.BF16)
                assert warm2 is warm
                assert cold == warm

    def test_gaudi3_uses_own_mme(self):
        from repro.hw.gaudi3 import Gaudi3Device

        memo.clear_caches()
        device = Gaudi3Device()
        result = device.gemm(1024, 1024, 1024, DType.BF16)
        with memo.disabled():
            cold = device.gemm(1024, 1024, 1024, DType.BF16)
        assert result == cold


class TestDecodeBatchStats:
    def test_from_context_lens_aggregates(self):
        stats = DecodeBatchStats.from_context_lens([100, 256, 300], block_size=128)
        assert stats.batch == 3
        assert stats.total_context == 656
        assert stats.max_context == 300
        # 100 -> 1 block, 256 -> 2 blocks, 300 -> 3 blocks
        assert stats.total_blocks == 6

    def test_advanced_matches_rebuild(self):
        lens = [1, 127, 128, 129, 255, 256, 1000]
        stats = DecodeBatchStats.from_context_lens(lens, block_size=128)
        for step in range(1, 300):
            stats = stats.advanced()
            rebuilt = DecodeBatchStats.from_context_lens(
                [c + step for c in lens], block_size=128
            )
            assert stats == rebuilt

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DecodeBatchStats.from_context_lens([])


class TestDecodeEquivalence:
    @pytest.mark.parametrize("attention", list(DecodeAttention))
    def test_decode_step_cached_equals_cold(self, attention):
        gaudi, a100 = _fresh_devices()
        device = a100 if attention is DecodeAttention.PAGED_CUDA else gaudi
        model = LlamaCostModel(LLAMA_3_1_8B, device)
        lens = [173, 512, 64, 2048, 128]
        warm1 = model.decode_step(len(lens), lens, attention)
        warm2 = model.decode_step(len(lens), lens, attention)
        with memo.disabled():
            cold = model.decode_step(len(lens), lens, attention)
        for phase in (warm1, warm2):
            assert phase.time == cold.time
            assert _activity_tuple(phase.activity) == _activity_tuple(cold.activity)

    def test_decode_step_stats_matches_list_form(self):
        gaudi, _ = _fresh_devices()
        model = LlamaCostModel(LLAMA_3_1_8B, gaudi)
        lens = [100, 200, 300, 400]
        stats = DecodeBatchStats.from_context_lens(lens)
        by_list = model.decode_step(len(lens), lens, DecodeAttention.PAGED_OPT)
        by_stats = model.decode_step_stats(stats, DecodeAttention.PAGED_OPT)
        assert by_stats.time == by_list.time
        assert _activity_tuple(by_stats.activity) == _activity_tuple(by_list.activity)

    def test_prefill_cached_equals_cold(self):
        gaudi, _ = _fresh_devices()
        model = LlamaCostModel(LLAMA_3_1_8B, gaudi)
        warm = model.prefill(2, 1024)
        warm2 = model.prefill(2, 1024)
        with memo.disabled():
            cold = model.prefill(2, 1024)
        assert warm2.time == warm.time == cold.time
        assert _activity_tuple(warm.activity) == _activity_tuple(cold.activity)


def _serving_report_dict(num_requests=24, seed=3):
    engine = LlmServingEngine(
        LlamaCostModel(LLAMA_3_1_8B, get_device("gaudi2")),
        DecodeAttention.PAGED_OPT,
        max_decode_batch=8,
    )
    return engine.run(dynamic_sonnet_requests(num_requests, seed=seed)).to_dict()


class TestServingEquivalence:
    def test_report_byte_identical_memo_on_off(self):
        memo.clear_caches()
        warm_cold_caches = _serving_report_dict()
        warm = _serving_report_dict()  # caches fully populated
        with memo.disabled():
            cold = _serving_report_dict()
        assert warm_cold_caches == cold
        assert warm == cold

    def test_figure_result_byte_identical_memo_on_off(self):
        from repro.figures import run_figure

        memo.clear_caches()
        warm = run_figure(figure_id="fig12", fast=True)
        warm2 = run_figure(figure_id="fig12", fast=True)
        with memo.disabled():
            cold = run_figure(figure_id="fig12", fast=True)
        for result in (warm, warm2):
            assert result.rows == cold.rows
            assert result.summary == cold.summary
            assert result.text == cold.text

    def test_observed_run_equals_unobserved(self):
        """Binding a RunContext disables the llama-term caches (their
        allreduce side effects must fire); the report must not move."""
        from repro.api import RunContext
        from repro.models.tensor_parallel import TensorParallelConfig

        memo.clear_caches()

        def build(ctx=None):
            device = get_device("gaudi2")
            tp = TensorParallelConfig.for_device(device, 2)
            return LlmServingEngine(
                LlamaCostModel(LLAMA_3_1_8B, device, tp=tp),
                DecodeAttention.PAGED_OPT,
                max_decode_batch=8,
                ctx=ctx,
            )

        plain = build().run(dynamic_sonnet_requests(12, seed=1)).to_dict()
        ctx = RunContext.create(seed=1, device="gaudi2")
        observed = build(ctx=ctx).run(dynamic_sonnet_requests(12, seed=1)).to_dict()
        assert observed == plain


class TestObservabilityAllocationGuard:
    def test_unobserved_run_allocates_one_accumulator(self, monkeypatch):
        """The step loop must not build ActivityAccumulators (or any
        other observability state) when no context is bound."""
        import repro.serving.engine as engine_mod

        allocations = []

        class CountingAccumulator(engine_mod.ActivityAccumulator):
            def __init__(self, *args, **kwargs):
                allocations.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(engine_mod, "ActivityAccumulator", CountingAccumulator)
        engine = LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, get_device("gaudi2")),
            DecodeAttention.PAGED_OPT,
            max_decode_batch=8,
        )
        report = engine.run(fixed_length_requests(8, 100, 25))
        assert report.engine_steps > 10
        # Exactly one: the run-level aggregate accumulator.
        assert sum(allocations) == 1


class TestSortedWaitingQueue:
    def _scheduler(self, num_blocks=64):
        from repro.serving.kv_cache import BlockManager

        return ContinuousBatchingScheduler(
            BlockManager(num_blocks=num_blocks, block_size=128), max_decode_batch=4
        )

    def test_submit_keeps_arrival_order(self):
        scheduler = self._scheduler()
        arrivals = [5.0, 1.0, 3.0, 1.0, 4.0]
        requests = [
            Request(request_id=i, input_tokens=10, output_tokens=5, arrival_time=t)
            for i, t in enumerate(arrivals)
        ]
        for request in requests:
            scheduler.submit(request)
        assert [r.arrival_time for r in scheduler.waiting] == sorted(arrivals)
        # Equal arrivals stay in submission order (stable FIFO).
        ones = [r.request_id for r in scheduler.waiting if r.arrival_time == 1.0]
        assert ones == [1, 3]

    def test_insort_left_vs_right(self):
        queue = []
        a = Request(request_id=0, input_tokens=1, output_tokens=1, arrival_time=1.0)
        b = Request(request_id=1, input_tokens=1, output_tokens=1, arrival_time=1.0)
        c = Request(request_id=2, input_tokens=1, output_tokens=1, arrival_time=1.0)
        _insort_by_arrival(queue, a)
        _insort_by_arrival(queue, b)          # right: after equal arrivals
        _insort_by_arrival(queue, c, left=True)  # left: before equal arrivals
        assert [r.request_id for r in queue] == [2, 0, 1]

    def test_requeue_moves_to_new_arrival_slot(self):
        scheduler = self._scheduler()
        early = Request(request_id=0, input_tokens=10, output_tokens=5, arrival_time=0.0)
        late = Request(request_id=1, input_tokens=10, output_tokens=5, arrival_time=9.0)
        scheduler.submit(early)
        scheduler.submit(late)
        scheduler.requeue(early, at=5.0)
        assert [r.request_id for r in scheduler.waiting] == [0, 1]
        assert early.arrival_time == 5.0
        scheduler.requeue(early, at=20.0)
        assert [r.request_id for r in scheduler.waiting] == [1, 0]

    def test_mutation_count_tracks_running_changes(self):
        scheduler = self._scheduler()
        requests = fixed_length_requests(2, 100, 10)
        for request in requests:
            scheduler.submit(request)
        v0 = scheduler.mutation_count
        scheduler.step(0.0)  # admits both
        assert scheduler.mutation_count > v0
        v1 = scheduler.mutation_count
        scheduler.step(0.1)  # nothing admitted or retired
        assert scheduler.mutation_count == v1
        scheduler.preempt(scheduler.running[-1])
        assert scheduler.mutation_count > v1


class TestSweepSeeds:
    def test_deterministic_and_distinct(self):
        seeds_a = sweep_seeds(42, 8)
        seeds_b = sweep_seeds(42, 8)
        assert seeds_a == seeds_b
        assert len(set(seeds_a)) == 8
        assert sweep_seeds(43, 8) != seeds_a

    def test_prefix_stable(self):
        # Adding sweep points must not reshuffle earlier points' seeds.
        assert sweep_seeds(7, 4) == sweep_seeds(7, 8)[:4]


class TestResolveWorkerCount:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_worker_count(None, 100) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_worker_count(None, 100) == 4

    def test_auto_caps_and_clamps(self):
        assert 1 <= resolve_worker_count("auto", 100) <= 8
        assert resolve_worker_count(6, 2) == 2
        assert resolve_worker_count(0, 0) == 1
