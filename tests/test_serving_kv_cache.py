"""Paged KV-cache block manager."""

import pytest

from repro.serving.kv_cache import BlockManager, KvCacheError


@pytest.fixture()
def manager():
    return BlockManager(num_blocks=16, block_size=128)


class TestAllocation:
    def test_blocks_needed_rounds_up(self, manager):
        assert manager.blocks_needed(1) == 1
        assert manager.blocks_needed(128) == 1
        assert manager.blocks_needed(129) == 2

    def test_allocate_and_free_roundtrip(self, manager):
        blocks = manager.allocate(1, 300)
        assert len(blocks) == 3
        assert manager.free_blocks == 13
        manager.free(1)
        assert manager.free_blocks == 16

    def test_double_allocation_rejected(self, manager):
        manager.allocate(1, 100)
        with pytest.raises(KvCacheError, match="already"):
            manager.allocate(1, 100)

    def test_exhaustion_raises(self, manager):
        manager.allocate(1, 15 * 128)
        with pytest.raises(KvCacheError, match="out of KV blocks"):
            manager.allocate(2, 3 * 128)

    def test_can_allocate_predicts(self, manager):
        assert manager.can_allocate(16 * 128)
        assert not manager.can_allocate(17 * 128)

    def test_free_unknown_request_raises(self, manager):
        with pytest.raises(KvCacheError):
            manager.free(99)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BlockManager(0, 128)


class TestAppend:
    def test_append_within_block_allocates_nothing(self, manager):
        manager.allocate(1, 100)
        assert manager.append_token(1) is False
        assert manager.free_blocks == 15

    def test_append_crossing_block_boundary(self, manager):
        manager.allocate(1, 128)
        assert manager.append_token(1) is True
        assert manager.free_blocks == 14

    def test_append_without_allocation_raises(self, manager):
        with pytest.raises(KvCacheError):
            manager.append_token(5)

    def test_append_exhaustion_raises(self):
        manager = BlockManager(num_blocks=1, block_size=4)
        manager.allocate(1, 4)
        with pytest.raises(KvCacheError, match="during decode"):
            manager.append_token(1)


class TestStats:
    def test_occupancy_and_fragmentation(self, manager):
        manager.allocate(1, 129)  # 2 blocks, 129 tokens of 256 slots
        stats = manager.stats()
        assert stats.allocated_blocks == 2
        assert stats.occupancy == pytest.approx(2 / 16)
        assert stats.internal_fragmentation == pytest.approx(1 - 129 / 256)

    def test_paged_fragmentation_bounded_by_one_block(self, manager):
        """The PagedAttention claim: waste < one block per request."""
        for rid, tokens in enumerate([129, 200, 300]):
            manager.allocate(rid, tokens)
        stats = manager.stats()
        wasted_tokens = stats.allocated_blocks * 128 - stats.used_tokens
        assert wasted_tokens < 3 * 128

    def test_block_list_is_copy(self, manager):
        manager.allocate(1, 200)
        listed = manager.block_list(1)
        listed.append(999)
        assert manager.block_list(1) != listed
