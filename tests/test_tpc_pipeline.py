"""VLIW scoreboard pipeline (the heart of Figure 8)."""

import pytest

from repro.hw.spec import GAUDI2_SPEC
from repro.tpc.isa import Instruction, Opcode
from repro.tpc.pipeline import VliwPipeline


@pytest.fixture(scope="module")
def pipe():
    return VliwPipeline()


def _ld(dest):
    return Instruction(Opcode.LD_TNSR, dest=dest, access_bytes=256)


def _add(dest, *sources):
    return Instruction(Opcode.ADD, dest=dest, sources=sources)


def _st(source):
    return Instruction(Opcode.ST_TNSR, sources=(source,), access_bytes=256)


class TestHazards:
    def test_raw_dependency_stalls_four_cycles(self, pipe):
        body = [_ld("x"), _add("r", "x")]
        result = pipe.simulate(body, 1)
        # load issues at 0, add waits until x is ready at cycle 4.
        assert result.total_cycles == 5

    def test_independent_ops_dual_issue(self, pipe):
        # load and an unrelated vector op can share a cycle (VLIW).
        body = [_ld("x"), _add("r", "z")]
        result = pipe.simulate(body, 1)
        assert result.total_cycles <= 2

    def test_same_slot_structural_hazard(self, pipe):
        body = [_ld("x"), _ld("y")]
        result = pipe.simulate(body, 1)
        assert result.total_cycles == 2  # one load per cycle

    def test_hoisted_loads_beat_serial_copies(self, pipe):
        """The unrolling mechanism: hoisting the second copy's loads
        above the first copy's dependent arithmetic shortens the
        in-order critical path."""
        serial = [
            _ld("x0"), _add("r0", "x0"), _st("r0"),
            _ld("x1"), _add("r1", "x1"), _st("r1"),
            Instruction(Opcode.LOOP_END, latency=1),
        ]
        hoisted = [
            _ld("x0"), _ld("x1"),
            _add("r0", "x0"), _add("r1", "x1"),
            _st("r0"), _st("r1"),
            Instruction(Opcode.LOOP_END, latency=1),
        ]
        assert (
            pipe.simulate(hoisted, 200).total_cycles
            < pipe.simulate(serial, 200).total_cycles
        )

    def test_waw_hazard_orders_writes(self, pipe):
        body = [_add("r", "a"), _add("r", "b")]
        result = pipe.simulate(body, 1)
        assert result.total_cycles >= 2


class TestLoopBehaviour:
    def test_register_reuse_serializes_iterations(self, pipe):
        """The mechanism behind the paper's unrolling best practice."""
        body = [_ld("x"), _ld("y"), _add("r", "x", "y"), _st("r"),
                Instruction(Opcode.LOOP_END, latency=1)]
        result = pipe.simulate(body, 100)
        assert result.cycles_per_iteration > 6

    def test_steady_state_extrapolation_consistent(self, pipe):
        body = [_ld("x"), _add("r", "x"), _st("r"), Instruction(Opcode.LOOP_END, latency=1)]
        short = pipe.simulate(body, 40)
        long = pipe.simulate(body, 40000)
        assert long.cycles_per_iteration == pytest.approx(
            short.cycles_per_iteration, rel=0.15
        )

    def test_cycles_scale_linearly_with_iterations(self, pipe):
        body = [_ld("x"), _add("r", "x"), _st("r"), Instruction(Opcode.LOOP_END, latency=1)]
        one = pipe.simulate(body, 10000).total_cycles
        two = pipe.simulate(body, 20000).total_cycles
        assert two == pytest.approx(2 * one, rel=0.01)


class TestRandomLoads:
    def test_gather_latency_applied(self, pipe):
        gather = [Instruction(Opcode.LD_G, dest="x", access_bytes=256), _add("r", "x")]
        result = pipe.simulate(gather, 1)
        assert result.total_cycles >= GAUDI2_SPEC.vector.random_load_latency

    def test_outstanding_window_limits_gather_rate(self, pipe):
        body = [Instruction(Opcode.LD_G, access_bytes=256)] * 4 + [
            Instruction(Opcode.LOOP_END, latency=1)
        ]
        result = pipe.simulate(body, 1000)
        # steady-state rate = latency / max_outstanding cycles per gather
        spec = GAUDI2_SPEC.vector
        expected = spec.random_load_latency / spec.max_outstanding_loads
        per_gather = result.cycles_per_iteration / 4
        assert per_gather == pytest.approx(expected, rel=0.2)


class TestAccounting:
    def test_bytes_per_iteration(self, pipe):
        body = [_ld("x"), _ld("y"), _add("r", "x", "y"), _st("r"),
                Instruction(Opcode.LOOP_END, latency=1)]
        result = pipe.simulate(body, 10)
        assert result.bytes_per_iteration == 768

    def test_sub_granule_moved_bytes_round_up(self, pipe):
        body = [Instruction(Opcode.LD_TNSR, dest="x", access_bytes=64)]
        result = pipe.simulate(body, 1)
        assert result.bytes_per_iteration == 64
        assert result.moved_bytes_per_iteration == 256

    def test_flops_per_iteration(self, pipe):
        body = [_add("r", "a", "b"), Instruction(Opcode.MAC, dest="r", sources=("a", "b"))]
        result = pipe.simulate(body, 1)
        assert result.flops_per_iteration == 128 + 256

    def test_time_seconds(self, pipe):
        body = [_add("r", "a")]
        result = pipe.simulate(body, 100)
        assert result.time_seconds(1e9) == pytest.approx(result.total_cycles / 1e9)


class TestValidation:
    def test_empty_body_raises(self, pipe):
        with pytest.raises(ValueError):
            pipe.simulate([], 1)

    def test_zero_iterations_raises(self, pipe):
        with pytest.raises(ValueError):
            pipe.simulate([_add("r", "a")], 0)
