"""Embedding-lookup operators (Section 4.1, Figures 14, 15)."""

import numpy as np
import pytest

from repro.kernels.embedding import (
    A100Fbgemm,
    EmbeddingConfig,
    GaudiBatchedTable,
    GaudiSdkSingleTable,
    GaudiSingleTable,
    make_operator,
    reference_embedding_bag,
)


def _config(tables=20, dim=64, batch=1024, pooling=20):
    return EmbeddingConfig(
        num_tables=tables,
        rows_per_table=1_000_000,
        embedding_dim=dim,
        pooling=pooling,
        batch_size=batch,
    )


class TestConfig:
    def test_derived_quantities(self):
        config = _config(tables=4, dim=64, batch=8, pooling=2)
        assert config.row_bytes == 256
        assert config.lookups_per_table == 16
        assert config.total_lookups == 64
        assert config.useful_bytes == 64 * 256
        assert config.output_bytes == 32 * 256

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            _config(tables=0)


class TestOperatorRelationships:
    def test_single_table_launches_per_table(self):
        result = GaudiSingleTable().run(_config(tables=7))
        assert result.launches == 7

    def test_batched_table_single_launch(self):
        result = GaudiBatchedTable().run(_config(tables=7))
        assert result.launches == 1

    def test_batched_beats_single_at_low_batch(self):
        config = _config(batch=128)
        single = GaudiSingleTable().run(config)
        batched = GaudiBatchedTable().run(config)
        assert batched.time < single.time / 2

    def test_gap_diminishes_at_large_batch(self):
        """Paper: SingleTable catches up as batch size grows."""
        small_ratio = (
            GaudiSingleTable().run(_config(batch=128)).time
            / GaudiBatchedTable().run(_config(batch=128)).time
        )
        large_ratio = (
            GaudiSingleTable().run(_config(batch=32768)).time
            / GaudiBatchedTable().run(_config(batch=32768)).time
        )
        assert large_ratio < small_ratio / 2
        assert large_ratio < 1.3

    def test_custom_single_beats_sdk(self):
        """Paper: the custom SingleTable is ~1.6x the SDK operator."""
        config = _config(batch=4096)
        sdk = GaudiSdkSingleTable().run(config)
        custom = GaudiSingleTable().run(config)
        assert 1.2 < sdk.time / custom.time < 4.0

    def test_batched_utilization_rises_with_tables(self):
        """Figure 15(a): BatchedTable utilization grows with tables."""
        utils = [
            GaudiBatchedTable().run(_config(tables=t, batch=512)).bandwidth_utilization
            for t in (1, 5, 20)
        ]
        assert utils[0] < utils[1] < utils[2]

    def test_single_table_flat_vs_tables(self):
        """Figure 15(a): SingleTable utilization does not grow."""
        utils = [
            GaudiSingleTable().run(_config(tables=t, batch=512)).bandwidth_utilization
            for t in (1, 5, 20)
        ]
        assert max(utils) / min(utils) < 1.2


class TestVsA100:
    def test_near_parity_for_large_vectors(self):
        """Paper: ~95 % of FBGEMM for >=256 B vectors."""
        config = _config(dim=128, batch=16384)  # 512 B rows
        gaudi = GaudiBatchedTable().run(config)
        a100 = A100Fbgemm().run(config)
        assert a100.time / gaudi.time == pytest.approx(0.9, abs=0.15)

    def test_half_speed_for_small_vectors(self):
        """Paper: ~47 % of FBGEMM below 256 B."""
        config = _config(dim=16, batch=16384)  # 64 B rows
        gaudi = GaudiBatchedTable().run(config)
        a100 = A100Fbgemm().run(config)
        assert a100.time / gaudi.time == pytest.approx(0.47, abs=0.15)

    def test_a100_peak_utilization(self):
        result = A100Fbgemm().run(_config(dim=256, batch=32768))
        assert result.bandwidth_utilization == pytest.approx(0.80, abs=0.06)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("sdk", GaudiSdkSingleTable),
            ("single", GaudiSingleTable),
            ("batched", GaudiBatchedTable),
            ("fbgemm", A100Fbgemm),
        ],
    )
    def test_make_operator(self, name, cls):
        assert isinstance(make_operator(name), cls)

    def test_unknown_operator(self):
        with pytest.raises(KeyError):
            make_operator("magic")


class TestFunctional:
    def test_embedding_bag_sums_pooled_rows(self):
        tables = np.arange(2 * 4 * 3, dtype=float).reshape(2, 4, 3)
        indices = np.array([[[0, 1], [2, 2]]])  # batch=1, tables=2, pooling=2
        out = reference_embedding_bag(tables, indices)
        np.testing.assert_allclose(out[0, 0], tables[0, 0] + tables[0, 1])
        np.testing.assert_allclose(out[0, 1], 2 * tables[1, 2])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            reference_embedding_bag(np.zeros((2, 4, 3)), np.zeros((1, 3, 2), dtype=int))

    def test_output_shape(self):
        tables = np.zeros((3, 10, 8))
        indices = np.zeros((5, 3, 4), dtype=int)
        assert reference_embedding_bag(tables, indices).shape == (5, 3, 8)
