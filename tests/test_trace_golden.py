"""Golden-trace tests: determinism and schema of traced serving runs.

Two serving runs with the same seed and the same ``RunContext``
configuration must produce *byte-identical* chrome://tracing exports —
the tracer runs on the engine's virtual clock, so there is no wall-time
jitter to forgive.
"""

import importlib.util
import json
import pathlib

import pytest

from repro.api import RunContext
from repro.hw.device import Gaudi2Device
from repro.models.llama import LLAMA_3_1_8B, LlamaCostModel
from repro.models.tensor_parallel import TensorParallelConfig
from repro.serving import LlmServingEngine, Request

_CHECKER_PATH = pathlib.Path(__file__).parent.parent / "scripts" / "check_trace_schema.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_trace_schema", _CHECKER_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _traced_run(seed: int = 0) -> RunContext:
    ctx = RunContext.create(seed=seed, device="gaudi2")
    device = Gaudi2Device()
    model = LlamaCostModel(
        LLAMA_3_1_8B, device, tp=TensorParallelConfig.for_device(device, 4)
    )
    engine = LlmServingEngine(model, max_decode_batch=8, ctx=ctx)
    requests = [
        Request(request_id=i, input_tokens=128, output_tokens=32, arrival_time=0.01 * i)
        for i in range(4)
    ]
    engine.run(requests)
    return ctx


class TestGoldenTrace:
    def test_same_seed_runs_are_byte_identical(self):
        first = _traced_run(seed=0).chrome_trace()
        second = _traced_run(seed=0).chrome_trace()
        assert first == second

    def test_trace_passes_schema_check(self):
        checker = _load_checker()
        document = json.loads(_traced_run().chrome_trace())
        assert checker.check_trace(document, require_layers=True) == []

    def test_trace_covers_all_five_layers(self):
        ctx = _traced_run()
        assert {"engine", "scheduler", "kv", "collective", "power"} <= set(
            ctx.tracer.categories()
        )

    def test_request_lifetimes_exported_as_async_pairs(self):
        document = json.loads(_traced_run().chrome_trace())
        begins = [e for e in document["traceEvents"] if e["ph"] == "b"]
        ends = [e for e in document["traceEvents"] if e["ph"] == "e"]
        assert len(begins) == 4
        assert {(e["name"], e["id"]) for e in begins} == {
            (e["name"], e["id"]) for e in ends
        }

    def test_no_open_spans_after_run(self):
        assert _traced_run().tracer.open_spans == 0

    def test_metrics_populated_alongside_trace(self):
        metrics = _traced_run().metrics
        assert metrics.counter("engine.steps").value > 0
        assert metrics.histogram("request.ttft").count == 4
        assert metrics.gauge("kv.allocated_blocks").max_value > 0

    def test_hw_profile_trace_shares_the_schema(self):
        from repro.graph import Engine, Graph, GraphCompiler
        from repro.tools import GaudiProfiler, chrome_trace

        checker = _load_checker()
        graph = Graph("layer")
        gemm = graph.add_op("gemm", Engine.MME, 100e-6, 1e6, 1e6, sliceable=True)
        graph.add_op(
            "act", Engine.TPC, 40e-6, 1e6, 1e6, inputs=[gemm],
            fusable=True, sliceable=True,
        )
        report = GaudiProfiler().profile(GraphCompiler().compile(graph))
        document = json.loads(chrome_trace(report))
        assert checker.check_trace(document, require_layers=False) == []


class TestSchemaChecker:
    def test_rejects_non_object(self):
        checker = _load_checker()
        assert checker.check_trace([], require_layers=False)

    def test_rejects_missing_counter_value(self):
        checker = _load_checker()
        document = {
            "displayTimeUnit": "ms",
            "traceEvents": [{"ph": "C", "pid": 1, "name": "w", "args": {}}],
        }
        errors = checker.check_trace(document, require_layers=False)
        assert any("args.value" in e for e in errors)

    def test_rejects_unbalanced_async(self):
        checker = _load_checker()
        document = {
            "displayTimeUnit": "ms",
            "traceEvents": [
                {"ph": "b", "pid": 1, "tid": 1, "name": "r", "id": 1, "ts": 0.0}
            ],
        }
        errors = checker.check_trace(document, require_layers=False)
        assert any("unbalanced" in e for e in errors)

    def test_flags_missing_layers(self):
        checker = _load_checker()
        document = {
            "displayTimeUnit": "ms",
            "traceEvents": [
                {"ph": "X", "pid": 1, "tid": 1, "name": "s", "cat": "engine",
                 "ts": 0.0, "dur": 1.0}
            ],
        }
        errors = checker.check_trace(document, require_layers=True)
        assert any("missing" in e for e in errors)
        assert checker.check_trace(document, require_layers=False) == []


class TestCliTrace:
    def test_trace_verb_writes_valid_trace(self, tmp_path, capsys):
        from repro.cli import main

        checker = _load_checker()
        out = tmp_path / "trace.json"
        code = main(
            ["trace", "--fast", "--requests", "8", "--out", str(out)]
        )
        assert code == 0
        document = json.loads(out.read_text())
        assert checker.check_trace(document, require_layers=True) == []
        captured = capsys.readouterr().out
        assert "chrome trace written to" in captured

    def test_top_verb_renders_timeline(self, capsys):
        from repro.cli import main

        code = main(["top", "--requests", "8", "--samples", "4"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "Power (W)" in captured
        assert "Prefill" in captured
