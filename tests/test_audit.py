"""Runtime invariant auditor: taxonomy, hooks, watchdog, validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import (
    AuditError,
    AuditMode,
    Auditor,
    ClockError,
    CollectiveAuditError,
    ConfigError,
    KvConservationError,
    LifecycleError,
    MemoEquivalenceError,
    ReportConsistencyError,
    TokenConservationError,
    Watchdog,
    WatchdogExceeded,
    audit_scope,
    get_auditor,
    resolve_mode,
)
from repro.models.llama import DecodeAttention, LLAMA_3_1_8B, LlamaCostModel
from repro.serving import (
    BlockManager,
    ContinuousBatchingScheduler,
    KvCacheError,
    LlmServingEngine,
    dynamic_sonnet_requests,
    fixed_length_requests,
)
from repro.serving.request import Request, RequestState


class TestTaxonomy:
    def test_all_rooted_at_audit_error(self):
        for cls in (KvConservationError, LifecycleError, ClockError,
                    TokenConservationError, ReportConsistencyError,
                    MemoEquivalenceError, CollectiveAuditError, ConfigError,
                    WatchdogExceeded):
            assert issubclass(cls, AuditError)
            assert issubclass(cls, RuntimeError)

    def test_check_slugs_distinct(self):
        slugs = [cls.check for cls in (
            KvConservationError, LifecycleError, ClockError,
            TokenConservationError, ReportConsistencyError,
            MemoEquivalenceError, CollectiveAuditError, ConfigError,
            WatchdogExceeded,
        )]
        assert len(slugs) == len(set(slugs))

    def test_config_error_is_value_error(self):
        """Legacy callers catching ValueError keep working."""
        assert issubclass(ConfigError, ValueError)
        with pytest.raises(ValueError):
            raise ConfigError("bad field")

    def test_watchdog_exceeded_carries_budget(self):
        error = WatchdogExceeded("over budget", steps=7, wall_seconds=1.5)
        assert error.steps == 7
        assert error.wall_seconds == 1.5


class TestModeResolution:
    def test_aliases(self):
        assert resolve_mode("") is AuditMode.OFF
        assert resolve_mode("0") is AuditMode.OFF
        assert resolve_mode("false") is AuditMode.OFF
        assert resolve_mode("1") is AuditMode.STRICT
        assert resolve_mode("true") is AuditMode.STRICT
        assert resolve_mode("SAMPLE") is AuditMode.SAMPLE

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            resolve_mode("verbose")

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "sample")
        assert resolve_mode() is AuditMode.SAMPLE

    def test_scope_restores_global(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        before = get_auditor()
        with audit_scope("strict") as auditor:
            assert auditor is get_auditor()
            assert auditor.strict
        assert get_auditor() is before

    def test_configure_exports_env_for_workers(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        with audit_scope("strict"):
            assert os.environ["REPRO_AUDIT"] == "strict"

    def test_bad_sample_fraction(self):
        with pytest.raises(ConfigError):
            Auditor(sample_fraction=1.5)


class TestLifecycle:
    def test_illegal_transition_raises_strict(self):
        auditor = Auditor(AuditMode.STRICT)
        with pytest.raises(LifecycleError):
            auditor.on_transition(1, RequestState.FINISHED, RequestState.RUNNING)

    def test_sample_mode_counts_instead(self):
        auditor = Auditor(AuditMode.SAMPLE)
        auditor.on_transition(1, RequestState.SHED, RequestState.RUNNING)
        assert auditor.violation_counts["lifecycle"] == 1

    def test_request_transitions_audited(self):
        with audit_scope("strict"):
            request = Request(1, input_tokens=8, output_tokens=2)
            request.start_running()
            request.record_token(0.1)
            request.record_token(0.2)   # finishes
            with pytest.raises(LifecycleError):
                request.fail("too late")  # finished -> failed is illegal

    def test_legal_paths_clean(self):
        with audit_scope("strict") as auditor:
            request = Request(2, input_tokens=8, output_tokens=4)
            request.start_running()
            request.restart()           # preemption: running -> waiting
            request.resubmit(1.0)       # waiting -> waiting
            request.start_running()
            request.shed("load")        # running -> shed
            assert auditor.total_violations == 0


class TestKvHardening:
    def test_free_unknown_id_raises(self):
        manager = BlockManager(num_blocks=8, block_size=4)
        with pytest.raises(KvCacheError):
            manager.free(42)

    def test_double_free_raises(self):
        manager = BlockManager(num_blocks=8, block_size=4)
        manager.allocate(1, 4)
        manager.free(1)
        with pytest.raises(KvCacheError):
            manager.free(1)

    def test_free_all_drains(self):
        manager = BlockManager(num_blocks=8, block_size=4)
        manager.allocate(1, 4)
        manager.allocate(2, 8)
        assert manager.free_all() == 2
        assert manager.allocated_blocks == 0
        assert manager.free_all() == 0

    def test_free_all_audited(self):
        auditor = Auditor(AuditMode.STRICT)
        manager = BlockManager(num_blocks=8, block_size=4)
        manager.bind_auditor(auditor)
        manager.allocate(1, 16)
        manager.free_all()
        assert auditor.checks["kv_conservation"] > 0
        assert auditor.total_violations == 0

    def test_free_and_allocated_overlap_detected(self):
        auditor = Auditor(AuditMode.STRICT)
        manager = BlockManager(num_blocks=8, block_size=4)
        manager.allocate(1, 4)
        manager._free.append(manager._tables[1][0])  # corrupt: block both free and owned
        with pytest.raises(KvConservationError):
            auditor.deep_check_kv(manager)

    def test_deep_scan_catches_double_ownership(self):
        auditor = Auditor(AuditMode.STRICT)
        manager = BlockManager(num_blocks=8, block_size=4)
        manager.allocate(1, 4)
        manager.allocate(2, 4)
        manager._tables[2][0] = manager._tables[1][0]
        with pytest.raises(KvConservationError):
            auditor.deep_check_kv(manager)


class TestCollectiveAudit:
    def test_impossible_cost_rejected(self):
        auditor = Auditor(AuditMode.STRICT)
        with pytest.raises(CollectiveAuditError):
            auditor.check_collective(-1.0, 1024.0, 4, 8)

    def test_participants_beyond_degree_rejected(self):
        auditor = Auditor(AuditMode.STRICT)
        with pytest.raises(CollectiveAuditError):
            auditor.check_collective(0.001, 1024.0, 9, 8)

    def test_allreduce_audited_in_run(self, gaudi):
        from repro.models.tensor_parallel import TensorParallelConfig

        with audit_scope("strict") as auditor:
            tp = TensorParallelConfig.for_device(gaudi, 4)
            tp.allreduce_time(1 << 20)
            assert auditor.checks["collective"] > 0
            assert auditor.total_violations == 0


class TestMemoEquivalence:
    def test_poisoned_cache_entry_detected(self):
        from repro.core.memo import CostCache

        with audit_scope("strict", sample_fraction=1.0):
            cache = CostCache("audit-test")
            cache.put("k", 1.0)
            cache._data["k"] = 2.0          # poison the entry
            assert cache.get("k") is None   # sampled hit -> forced recompute
            with pytest.raises(MemoEquivalenceError):
                cache.put("k", 1.0)         # fresh value != poisoned entry

    def test_clean_cache_passes(self):
        from repro.core.memo import CostCache

        with audit_scope("strict", sample_fraction=1.0) as auditor:
            cache = CostCache("audit-clean")
            cache.put("k", 1.0)
            assert cache.get("k") is None
            cache.put("k", 1.0)
            assert auditor.memo_verified == 1
            assert auditor.total_violations == 0

    def test_off_mode_does_not_perturb_hits(self):
        from repro.core.memo import CostCache

        with audit_scope("off"):
            cache = CostCache("audit-off")
            cache.put("k", 1.0)
            assert cache.get("k") == 1.0
            assert cache.hits == 1


class TestTokenAndClock:
    def test_clock_regression_detected(self):
        auditor = Auditor(AuditMode.STRICT)
        run = auditor.begin_run("t")
        run.observe_clock(1.0)
        with pytest.raises(ClockError):
            run.observe_clock(0.5)

    def test_token_ledger_balances(self):
        auditor = Auditor(AuditMode.STRICT)
        run = auditor.begin_run("t")
        run.set_token_baseline(0)
        for _ in range(10):
            run.on_tokens_emitted()
        run.on_tokens_rolled_back(3)
        run.check_token_conservation(7)
        with pytest.raises(TokenConservationError):
            run.check_token_conservation(8)

    def test_report_partition_checked(self):
        auditor = Auditor(AuditMode.STRICT)
        run = auditor.begin_run("t")

        class Bad:
            num_requests = 4
            finished_requests = 1
            shed_requests = 1
            failed_requests = 1
            unfinished_requests = 0   # 3 != 4
            total_time = 1.0
            total_output_tokens = 10
            mean_ttft = 0.1
            mean_tpot = 0.01

        with pytest.raises(ReportConsistencyError):
            run.check_report(Bad())


class TestWatchdog:
    def test_validation(self):
        with pytest.raises(ConfigError):
            Watchdog(max_steps=0)
        with pytest.raises(ConfigError):
            Watchdog(max_wall_seconds=-1.0)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WATCHDOG_STEPS", raising=False)
        monkeypatch.delenv("REPRO_WATCHDOG_WALL", raising=False)
        assert Watchdog.from_env() is None
        monkeypatch.setenv("REPRO_WATCHDOG_STEPS", "100")
        watchdog = Watchdog.from_env()
        assert watchdog is not None and watchdog.max_steps == 100

    def test_step_budget_trips(self):
        watchdog = Watchdog(max_steps=5)
        watchdog.start()
        watchdog.check(4)
        with pytest.raises(WatchdogExceeded):
            watchdog.check(5)

    def test_engine_converts_trip_to_partial_report(self, gaudi):
        engine = LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, gaudi),
            DecodeAttention.PAGED_OPT,
            max_decode_batch=4,
            watchdog=Watchdog(max_steps=10),
        )
        report = engine.run(fixed_length_requests(8, 100, 50))
        assert report.watchdog_tripped
        assert "PARTIAL RESULT" in report.render()
        # The watchdog path must not leak KV blocks.
        assert engine.block_manager.allocated_blocks == 0

    def test_untripped_run_reports_nothing(self, gaudi):
        engine = LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, gaudi),
            DecodeAttention.PAGED_OPT,
            max_decode_batch=4,
            watchdog=Watchdog(max_steps=100_000),
        )
        report = engine.run(fixed_length_requests(2, 50, 5))
        assert not report.watchdog_tripped
        assert "PARTIAL RESULT" not in report.render()


class TestStrictEndToEnd:
    def test_serving_run_zero_violations(self, gaudi):
        with audit_scope("strict") as auditor:
            engine = LlmServingEngine(
                LlamaCostModel(LLAMA_3_1_8B, gaudi),
                DecodeAttention.PAGED_OPT,
                max_decode_batch=8,
                auditor=auditor,
            )
            engine.run(dynamic_sonnet_requests(12, seed=5))
            assert auditor.total_violations == 0
            assert auditor.checks["kv_conservation"] > 0
            assert auditor.checks["report_consistency"] > 0

    def test_preemption_churn_zero_violations(self, gaudi):
        with audit_scope("strict") as auditor:
            engine = LlmServingEngine(
                LlamaCostModel(LLAMA_3_1_8B, gaudi),
                DecodeAttention.PAGED_OPT,
                max_decode_batch=8,
                num_kv_blocks=24,
                auditor=auditor,
            )
            report = engine.run(fixed_length_requests(8, 256, 200))
            assert report.preemptions > 0
            assert auditor.total_violations == 0

    def test_summary_and_metrics_export(self):
        from repro.obs.metrics import MetricsRegistry

        auditor = Auditor(AuditMode.SAMPLE)
        auditor.on_transition(1, RequestState.SHED, RequestState.RUNNING)
        summary = auditor.summary()
        assert summary["violations"] == 1
        registry = MetricsRegistry()
        auditor.publish_metrics(registry)
        auditor.publish_metrics(registry)  # delta-idempotent
        assert registry.counter("audit.violations").value == 1
        assert "lifecycle" in auditor.render()


@st.composite
def _op_sequences(draw):
    """Sequences of (op, arg) driving the scheduler API."""
    return draw(st.lists(
        st.tuples(
            st.sampled_from(["submit", "step", "preempt", "shed", "requeue"]),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=1,
        max_size=40,
    ))


class TestSchedulerPropertyAudit:
    """Arbitrary legal op interleavings keep every invariant intact."""

    @settings(max_examples=60, deadline=None)
    @given(ops=_op_sequences())
    def test_random_schedules_hold_invariants(self, ops):
        with audit_scope("strict", sample_fraction=1.0) as auditor:
            manager = BlockManager(num_blocks=32, block_size=16)
            manager.bind_auditor(auditor)
            scheduler = ContinuousBatchingScheduler(manager, max_decode_batch=4)
            audit = auditor.begin_run("property")
            scheduler.bind_audit(audit)
            requests = [
                Request(i, input_tokens=24, output_tokens=4, arrival_time=0.0)
                for i in range(8)
            ]
            submitted = set()
            now = 0.0
            emitted = 0
            for op, index in ops:
                request = requests[index]
                if op == "submit" and index not in submitted:
                    scheduler.submit(request)
                    submitted.add(index)
                elif op == "step":
                    now += 1.0
                    for runner in scheduler.step(now).running:
                        runner.record_token(now)
                        emitted += 1
                        audit.on_tokens_emitted()
                elif op == "preempt" and request in scheduler.running:
                    scheduler.preempt(request)
                elif op == "shed" and (
                    request in scheduler.waiting or request in scheduler.running
                ):
                    scheduler.shed(request, "property-test")
                elif op == "requeue" and request in scheduler.waiting:
                    scheduler.requeue(request, now + 0.5)
            # Conservation at the end of any interleaving:
            audit.check_token_conservation(sum(r.generated for r in requests))
            owned = sum(
                len(blocks) for _, blocks in manager.iter_tables()
            )
            assert owned == manager.allocated_blocks
            running_ids = {r.request_id for r in scheduler.running}
            table_ids = {rid for rid, _ in manager.iter_tables()}
            assert running_ids == table_ids
            auditor.deep_check_kv(manager)
            assert auditor.total_violations == 0


class TestValidation:
    def test_chaos_config_rejects_bad_fields(self):
        from repro.faults import ChaosConfig

        for kwargs, fragment in [
            (dict(model="13b"), "model"),
            (dict(tp=0), "tp"),
            (dict(max_decode_batch=0), "max_decode_batch"),
            (dict(num_requests=0), "num_requests"),
            (dict(rate=-1.0), "rate"),
            (dict(deadline=0.0), "deadline"),
            (dict(max_retries=-1), "max_retries"),
            (dict(checkpoint_interval=0), "checkpoint_interval"),
            (dict(num_kv_blocks=0), "num_kv_blocks"),
            (dict(admission_watermark=0.0), "admission_watermark"),
        ]:
            with pytest.raises(ConfigError) as excinfo:
                ChaosConfig(**kwargs)
            assert fragment in str(excinfo.value)

    def test_fault_plan_rejects_bad_fields(self):
        from repro.faults import FaultPlan

        with pytest.raises(ConfigError):
            FaultPlan(kernel_fault_rate=1.5)
        with pytest.raises(ConfigError):
            FaultPlan().fail_device(-1, at=1.0)
        with pytest.raises(ConfigError):
            FaultPlan().degrade_link(0, 0, factor=0.5, at=1.0)
        with pytest.raises(ConfigError):
            FaultPlan().degrade_link(0, 1, factor=1.5, at=1.0)
        with pytest.raises(ConfigError):
            FaultPlan().straggler(2, factor=0.0, at=1.0)
        with pytest.raises(ConfigError):
            FaultPlan().throttle_hbm(0.0, at=1.0)
        with pytest.raises(ConfigError):
            FaultPlan().flap_link(0, 1, at=1.0, period=0.0, cycles=2)
        with pytest.raises(ConfigError):
            FaultPlan().fail_device(1, at=2.0, recover_at=1.0)

    def test_chaos_config_still_value_error_compatible(self):
        from repro.faults import ChaosConfig

        with pytest.raises(ValueError):
            ChaosConfig(model="13b")


class TestReportGuards:
    def test_empty_run_renders(self, gaudi):
        engine = LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, gaudi), DecodeAttention.PAGED_OPT
        )
        report = engine.run([])
        assert report.num_requests == 0
        assert "no finished requests" in report.render()

    def test_resilience_report_all_shed_renders(self):
        from repro.faults.report import ResilienceReport

        report = ResilienceReport(
            device="Gaudi-2", model="llama", tp_degree=1, seed=0,
            num_requests=4, finished_requests=0, shed_requests=4,
            failed_requests=0, unfinished_requests=0, retried_requests=0,
            recovered_requests=0, preemptions=0, fault_preemptions=0,
            kernel_retries=0, device_failures=0, device_recoveries=0,
            total_time=0.0, total_output_tokens=0,
            throughput_tokens_per_s=0.0, goodput_tokens_per_s=0.0,
            slo_violation_rate=1.0, mean_ttft=0.0, p99_ttft=0.0,
            mean_tpot=0.0, alive_devices=1, healthy_allreduce_bw=0.0,
            degraded_allreduce_bw=0.0,
        )
        text = report.render()
        assert "no finished requests" in text
        assert "mean TTFT" not in text
