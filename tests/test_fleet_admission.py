"""Fleet-level overload protection: tenants, admission, breakers, upgrades."""

import pytest

from repro.audit import ConfigError, audit_scope
from repro.cluster import (
    AdmissionPolicy,
    BreakerPolicy,
    FleetConfig,
    NodeFaultPlan,
    TenantSpec,
    UpgradePlan,
    resume_fleet,
    run_fleet,
)

#: The premium tier's TTFT SLO (seconds) used across these tests.
TIER0_SLO = 2.0

TENANTS = (
    TenantSpec(name="gold", tier=0, share=0.25, weight=4.0, ttft_slo=TIER0_SLO),
    TenantSpec(name="silver", tier=1, share=0.35, weight=2.0),
    TenantSpec(name="bronze", tier=2, share=0.40, weight=1.0),
)


def _overload_config(**kwargs):
    """A 2-node batch-4 fleet at 2x its saturation rate."""
    kwargs.setdefault("nodes", (("gaudi2", 2),))
    kwargs.setdefault("max_decode_batch", 4)
    kwargs.setdefault("num_requests", 96)
    kwargs.setdefault("rate", 40.0)
    kwargs.setdefault("seed", 0)
    kwargs.setdefault("tenants", TENANTS)
    return FleetConfig(**kwargs)


def _admission_policy(**kwargs):
    kwargs.setdefault("target_queue_delay", 0.4)
    kwargs.setdefault("shed_queue_delay", 0.8)
    kwargs.setdefault("evaluate_interval", 0.25)
    kwargs.setdefault("brownout_max_new_tokens", 48)
    kwargs.setdefault("max_queue_delay", 20.0)
    return AdmissionPolicy(**kwargs)


class TestConfigPlumbing:
    def test_round_trip_with_admission_fields(self):
        config = _overload_config(
            admission=_admission_policy(max_inflight_per_node=6),
            breaker=BreakerPolicy(failure_threshold=2, cooldown=1.5),
            upgrade=UpgradePlan(start=1.0, restart_delay=0.75),
        )
        assert FleetConfig.from_dict(config.to_dict()) == config

    def test_legacy_dict_without_admission_keys_loads(self):
        data = FleetConfig().to_dict()
        for key in ("tenants", "admission", "breaker", "upgrade"):
            data.pop(key, None)
        config = FleetConfig.from_dict(data)
        assert config.tenants == ()
        assert config.admission is None
        assert config.breaker is None
        assert config.upgrade is None

    def test_admission_requires_tenants(self):
        with pytest.raises(ConfigError):
            FleetConfig(admission=_admission_policy())

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ConfigError):
            FleetConfig(tenants=(
                TenantSpec(name="a", tier=0), TenantSpec(name="a", tier=1)
            ))


class TestTenantAccounting:
    def test_tenant_reports_partition_the_workload(self):
        with audit_scope("strict"):
            report = run_fleet(_overload_config(rate=10.0, num_requests=48))
        assert {t.name for t in report.tenant_reports} == \
            {"gold", "silver", "bronze"}
        assert sum(t.admitted for t in report.tenant_reports) == report.admitted
        assert sum(t.finished for t in report.tenant_reports) == report.finished
        # Untenanted runs carry no tenant section.
        with audit_scope("strict"):
            plain = run_fleet(FleetConfig(num_requests=16, rate=8.0))
        assert plain.tenant_reports == ()

    def test_tenant_assignment_is_deterministic(self):
        config = _overload_config(rate=10.0, num_requests=48)
        with audit_scope("strict"):
            first = run_fleet(config)
            second = run_fleet(config)
        assert first.to_payload() == second.to_payload()
        assert first.render() == second.render()


class TestOverloadProtection:
    def test_tier0_slo_holds_at_2x_while_lower_tiers_shed_first(self):
        """The headline acceptance criterion: at 2x the saturation
        rate, admission control browns out and sheds best-effort tiers
        while tier-0 p99 TTFT stays inside its SLO."""
        with audit_scope("strict"):
            baseline = run_fleet(_overload_config())
            protected = run_fleet(_overload_config(
                admission=_admission_policy()
            ))
        tiers = {t.tier: t for t in protected.tenant_reports}
        tier0, tier2 = tiers[0], tiers[2]
        # Overload response actually engaged...
        assert protected.brownout_entries > 0
        assert protected.overload_sheds > 0
        assert protected.admission_mode_log
        # ...shedding strictly below tier 0 (audited fleet-wide too).
        assert tier0.shed == 0
        assert tier0.overload_shed == 0
        assert tier2.overload_shed > 0
        # Tier 0 rides out the overload inside its SLO.
        assert tier0.p99_ttft <= TIER0_SLO
        assert tier0.slo_violations == 0
        # The unprotected fleet sheds nothing and lets queueing delay
        # soak the best-effort tier instead.
        baseline_tier2 = {t.tier: t for t in baseline.tenant_reports}[2]
        assert baseline.overload_sheds == 0
        assert tier2.p99_ttft < baseline_tier2.p99_ttft / 2

    def test_quota_sheds_only_hit_the_metered_tenant(self):
        tenants = (
            TenantSpec(name="gold", tier=0, share=0.3, weight=4.0),
            TenantSpec(
                name="bronze", tier=2, share=0.7, weight=1.0,
                quota_rate=2.0, quota_burst=2.0,
            ),
        )
        with audit_scope("strict"):
            report = run_fleet(_overload_config(
                tenants=tenants, rate=20.0, num_requests=48,
                admission=_admission_policy(),
            ))
        by_name = {t.name: t for t in report.tenant_reports}
        assert report.quota_sheds > 0
        assert by_name["bronze"].quota_shed == report.quota_sheds
        assert by_name["gold"].quota_shed == 0

    def test_sheds_carry_gateway_overload_reasons(self):
        with audit_scope("strict"):
            report = run_fleet(_overload_config(admission=_admission_policy()))
        reasons = dict(report.shed_reasons_gateway)
        assert reasons.get("gateway-overload", 0) > 0
        admission_sheds = (
            reasons.get("gateway-overload", 0)
            + reasons.get("gateway-admission-timeout", 0)
        )
        assert admission_sheds == report.overload_sheds


class TestCircuitBreakers:
    def _sick_node_config(self, breaker):
        return FleetConfig(
            nodes=(("gaudi2", 2),),
            max_decode_batch=8,
            num_requests=48,
            rate=12.0,
            seed=0,
            timeout=1.0,
            plan=NodeFaultPlan.from_spec(
                "brownout:gaudi2-1@t=0.5,factor=0.02,until=20"
            ),
            breaker=breaker,
        )

    def test_breakers_damp_the_retry_storm(self):
        """With one node browned out to 2% speed behind a 1s timeout,
        breakers must not amplify traffic: fewer dispatches and fewer
        timeouts than the naive keep-hammering baseline, at no cost in
        completed requests."""
        with audit_scope("strict"):
            without = run_fleet(self._sick_node_config(None))
            with_breaker = run_fleet(self._sick_node_config(
                BreakerPolicy(failure_threshold=2, cooldown=3.0)
            ))
        assert with_breaker.breaker_opens > 0
        assert with_breaker.attempts < without.attempts
        assert with_breaker.timeouts < without.timeouts
        assert with_breaker.finished >= without.finished
        assert without.breaker_opens == 0

    def test_short_circuits_counted_when_only_breaker_blocks(self):
        with audit_scope("strict"):
            report = run_fleet(self._sick_node_config(
                BreakerPolicy(failure_threshold=2, cooldown=3.0)
            ))
        # The sick node stays routable (browned out, not dead), so
        # every avoided dispatch is a genuine breaker short-circuit.
        assert report.breaker_short_circuits > 0


class TestRollingUpgrades:
    def _upgrade_config(self, **kwargs):
        kwargs.setdefault("nodes", (("gaudi2", 2),))
        kwargs.setdefault("max_decode_batch", 8)
        kwargs.setdefault("num_requests", 48)
        kwargs.setdefault("rate", 8.0)
        kwargs.setdefault("seed", 0)
        kwargs.setdefault("upgrade", UpgradePlan(start=1.0))
        return FleetConfig(**kwargs)

    def test_every_node_drains_with_zero_loss(self):
        with audit_scope("strict"):
            report = run_fleet(self._upgrade_config())
        assert report.upgrades_started == 2
        assert report.upgrades_completed == 2
        assert report.unfinished == 0
        assert report.finished + report.shed == report.admitted
        for name in ("gaudi2-0", "gaudi2-1"):
            assert f"drain {name}" in " ".join(report.upgrade_log)
            assert f"rejoin {name}" in " ".join(report.upgrade_log)

    def test_upgrade_composes_with_crash_chaos(self):
        # A node that dies mid-schedule is skipped (nothing to drain),
        # not wedged on; the rest of the fleet still upgrades.
        with audit_scope("strict"):
            report = run_fleet(self._upgrade_config(
                nodes=(("gaudi2", 3),),
                timeout=10.0,
                upgrade=UpgradePlan(start=1.0),
                plan=NodeFaultPlan.from_spec("crash:gaudi2-1@t=0.5,recover=30"),
            ))
        assert report.upgrades_started == report.upgrades_completed
        assert report.unfinished == 0

    def test_upgrade_with_tenants_and_admission(self):
        with audit_scope("strict"):
            report = run_fleet(self._upgrade_config(
                tenants=TENANTS,
                admission=_admission_policy(),
                breaker=BreakerPolicy(),
            ))
        assert report.upgrades_completed == 2
        assert report.unfinished == 0


class TestJournalResume:
    def test_resume_is_byte_identical_with_full_admission_stack(self, tmp_path):
        config = _overload_config(
            num_requests=48,
            admission=_admission_policy(),
            breaker=BreakerPolicy(),
            upgrade=UpgradePlan(start=1.0),
        )
        run_dir = tmp_path / "fleet-admission"
        with audit_scope("strict"):
            original = run_fleet(config, journal=run_dir)
            resumed = resume_fleet(run_dir)
        assert resumed.to_payload() == original.to_payload()
        assert resumed.to_json() == original.to_json()
        assert resumed.render() == original.render()

    def test_render_surfaces_admission_sections(self):
        with audit_scope("strict"):
            report = run_fleet(_overload_config(
                num_requests=48,
                admission=_admission_policy(),
                breaker=BreakerPolicy(),
                upgrade=UpgradePlan(start=1.0),
            ))
        text = report.render()
        assert "admission" in text
        assert "tenant" in text
        assert "gold (tier 0)" in text
        assert "upgrade" in text
