"""Characterization framework: metrics, roofline, sweeps, experiments,
comparisons, reports, and the Table 2 registry."""

import pytest

from repro.core import (
    MICROBENCHMARKS,
    Experiment,
    Roofline,
    Sweep,
    compare_metric,
    geometric_mean,
    ratio,
    render_heatmap,
    render_table,
    tflops,
    utilization,
)
from repro.core.compare import paired_rows
from repro.core.metrics import arithmetic_mean, bandwidth_utilization, percentile
from repro.core.microbench import table2_rows
from repro.hw.spec import GAUDI2_SPEC


class TestMetrics:
    def test_tflops(self):
        assert tflops(2e12, 2.0) == 1.0

    def test_utilization(self):
        assert utilization(50.0, 200.0) == 0.25

    def test_ratio_guard(self):
        with pytest.raises(ZeroDivisionError):
            ratio(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0

    def test_bandwidth_utilization(self):
        assert bandwidth_utilization(1e12, 1.0, 2e12) == 0.5

    def test_percentile(self):
        data = list(range(1, 101))
        assert percentile(data, 99) == 99
        assert percentile(data, 100) == 100
        with pytest.raises(ValueError):
            percentile([], 50)


class TestRoofline:
    def test_ridge_point(self):
        roofline = Roofline(peak_flops=432e12, peak_bandwidth=2.45e12)
        assert roofline.ridge_point == pytest.approx(432 / 2.45)

    def test_attainable_below_and_above_ridge(self):
        roofline = Roofline(100e12, 1e12)
        assert roofline.attainable(10) == 10e12
        assert roofline.attainable(1000) == 100e12

    def test_memory_bound_classification(self):
        roofline = Roofline(100e12, 1e12)
        assert roofline.is_memory_bound(50)
        assert not roofline.is_memory_bound(200)

    def test_for_device(self):
        roofline = Roofline.for_device(GAUDI2_SPEC)
        assert roofline.peak_flops == pytest.approx(432e12)

    def test_place_efficiency(self):
        roofline = Roofline(100e12, 1e12)
        point = roofline.place("k", 10, 5e12)
        assert point.efficiency == pytest.approx(0.5)

    def test_curve(self):
        roofline = Roofline(100e12, 1e12)
        curve = roofline.curve([1.0, 1000.0])
        assert curve[0][1] == 1e12
        assert curve[1][1] == 100e12


class TestSweep:
    def test_cartesian_product(self):
        sweep = Sweep(a=[1, 2], b=["x", "y", "z"])
        assert sweep.size == 6
        assert len(list(sweep)) == 6

    def test_subset_keeps_endpoints(self):
        sweep = Sweep(a=[1, 2, 3, 4, 5])
        thinned = sweep.subset(2)
        values = thinned.axes["a"]
        assert values[0] == 1

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            Sweep(a=[])


class TestExperiment:
    def test_rows_merged_with_params(self):
        experiment = Experiment(
            "double", Sweep(x=[1, 2, 3]), lambda x: {"y": 2 * x}
        )
        result = experiment.run()
        assert result.column("y") == [2, 4, 6]
        assert result.rows[0]["x"] == 1

    def test_fn_may_return_row_lists(self):
        experiment = Experiment(
            "multi", Sweep(x=[1]), lambda x: [{"y": 1}, {"y": 2}]
        )
        assert len(experiment.run()) == 2

    def test_where_filter(self):
        experiment = Experiment("f", Sweep(x=[1, 2]), lambda x: {"y": x * x})
        result = experiment.run()
        assert result.where(x=2)[0]["y"] == 4

    def test_non_dict_rows_rejected(self):
        experiment = Experiment("bad", Sweep(x=[1]), lambda x: 42)
        with pytest.raises(TypeError):
            experiment.run()

    def test_fast_mode_shrinks(self):
        experiment = Experiment("f", Sweep(x=list(range(10))), lambda x: {"y": x})
        assert len(experiment.run(fast=True)) < 10


class TestCompare:
    def test_summary_statistics(self):
        summary = compare_metric("perf", [2.0, 4.0], [1.0, 1.0])
        assert summary.mean == 3.0
        assert summary.geomean == pytest.approx((8.0) ** 0.5)
        assert summary.wins == 2

    def test_lower_is_better_inverts(self):
        summary = compare_metric("latency", [1.0], [2.0], higher_is_better=False)
        assert summary.ratios[0] == 2.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            compare_metric("m", [1.0], [1.0, 2.0])

    def test_paired_rows_join(self):
        a = [{"k": 1, "v": 10}, {"k": 2, "v": 20}]
        b = [{"k": 2, "v": 200}, {"k": 1, "v": 100}]
        pairs = paired_rows(a, b, keys=["k"])
        assert pairs[0][1]["v"] == 100

    def test_paired_rows_no_match(self):
        with pytest.raises(ValueError):
            paired_rows([{"k": 1}], [{"k": 2}], keys=["k"])


class TestReport:
    def test_table_rendering(self):
        text = render_table(["a", "b"], [(1, 2), (3, 4)], title="T")
        assert "T" in text
        assert "3" in text

    def test_table_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [(1, 2)])

    def test_heatmap_rendering(self):
        text = render_heatmap([[0.1, 0.9]], ["r"], ["c1", "c2"])
        assert "0.10" in text and "0.90" in text

    def test_heatmap_constant_grid_ok(self):
        render_heatmap([[1.0, 1.0]], ["r"], ["a", "b"])

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            render_heatmap([], [], [])


class TestMicrobenchRegistry:
    def test_table2_has_four_suites(self):
        assert len(MICROBENCHMARKS) == 4
        categories = {m.category for m in MICROBENCHMARKS}
        assert categories == {"Compute", "Memory", "Communication"}

    def test_rows_pair_gaudi_and_a100(self):
        rows = table2_rows()
        assert len(rows) == 8
        assert rows[0][2] == "Gaudi-2"
        assert rows[1][2] == "A100"

    def test_modules_exist(self):
        import importlib

        for spec in MICROBENCHMARKS:
            importlib.import_module(spec.module)


class TestExperimentExport:
    def _result(self):
        experiment = Experiment("sq", Sweep(x=[1, 2, 3]), lambda x: {"y": x * x})
        return experiment.run()

    def test_csv_roundtrip(self):
        import csv
        import io

        text = self._result().to_csv()
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[2]["y"] == "9"

    def test_json_roundtrip(self):
        import json

        doc = json.loads(self._result().to_json())
        assert doc["name"] == "sq"
        assert doc["rows"][1] == {"x": 2, "y": 4}

    def test_ragged_rows_export(self):
        experiment = Experiment(
            "ragged", Sweep(x=[1, 2]),
            lambda x: {"y": 1} if x == 1 else {"z": 2},
        )
        result = experiment.run()
        assert set(result.fieldnames()) == {"x", "y", "z"}
        assert "z" in result.to_csv().splitlines()[0]

    def test_empty_export_rejected(self):
        from repro.core.experiment import ExperimentResult

        with pytest.raises(ValueError):
            ExperimentResult(name="empty").to_csv()
