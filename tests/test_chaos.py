"""Chaos runs: graceful degradation end to end (the acceptance scenario)."""

import pytest

from repro.faults import ChaosConfig, FaultPlan, run_chaos
from repro.models.llama import DecodeAttention, LLAMA_3_1_8B, LlamaCostModel
from repro.serving import (
    LlmServingEngine,
    ResiliencePolicy,
    RetryPolicy,
    fixed_length_requests,
    run_resilient_load_test,
)
from repro.serving.request import RequestState


def _config(**overrides):
    defaults = dict(tp=8, seed=0, num_requests=96, max_decode_batch=32)
    defaults.update(overrides)
    return ChaosConfig(**defaults)


def _kill_plan():
    return FaultPlan(seed=0).fail_device(3, at=1.5)


class TestKillOneOfEight:
    """ISSUE acceptance: kill 1 of 8 devices mid-run at TP=8."""

    def test_completes_and_recovers(self):
        report = run_chaos(_config(plan=_kill_plan()))
        assert report.device_failures == 1
        assert report.alive_devices == 7
        assert report.fault_preemptions > 0
        assert report.recovered_requests > 0
        assert report.unfinished_requests == 0
        assert report.failed_requests == 0
        assert report.finished_requests + report.shed_requests == report.num_requests

    def test_goodput_degrades_consistently_with_port_loss(self):
        """Losing 1 of 8 devices leaves (7-1)*3 of 21 ports: the Fig. 10
        cliff must show up in both the fabric and the goodput."""
        faulty = run_chaos(_config(plan=_kill_plan()))
        healthy = run_chaos(_config())
        assert faulty.bandwidth_retention == pytest.approx(6 / 7, rel=0.01)
        assert healthy.bandwidth_retention == pytest.approx(1.0)
        assert faulty.goodput_tokens_per_s < healthy.goodput_tokens_per_s

    def test_same_seed_byte_identical_report(self):
        first = run_chaos(_config(plan=_kill_plan()))
        second = run_chaos(_config(plan=_kill_plan()))
        assert first.render() == second.render()
        assert first.to_dict() == second.to_dict()

    def test_different_seed_differs(self):
        base = run_chaos(_config(plan=_kill_plan()))
        other = run_chaos(_config(seed=1, plan=FaultPlan(seed=1).fail_device(3, at=1.5)))
        assert base.render() != other.render()


class TestDegradationModes:
    def test_hbm_throttle_slows_run(self):
        throttled = run_chaos(
            _config(plan=FaultPlan().throttle_hbm(0.5, at=0.0))
        )
        healthy = run_chaos(_config())
        assert throttled.total_time > 1.5 * healthy.total_time

    def test_straggler_paces_whole_batch(self):
        straggling = run_chaos(
            _config(plan=FaultPlan().straggler(2, 0.5, at=0.0))
        )
        healthy = run_chaos(_config())
        assert straggling.total_time > 1.5 * healthy.total_time

    def test_kernel_faults_cost_retries_not_requests(self):
        report = run_chaos(
            _config(plan=FaultPlan(seed=0, kernel_fault_rate=0.05))
        )
        assert report.kernel_retries > 0
        assert report.finished_requests == report.num_requests

    def test_link_flap_survives(self):
        report = run_chaos(
            _config(plan=FaultPlan().flap_link(0, 1, at=0.5, period=0.4, cycles=4))
        )
        assert report.finished_requests == report.num_requests

    def test_a100_switch_keeps_bandwidth_flat(self):
        report = run_chaos(
            _config(device="a100", plan=FaultPlan().fail_device(3, at=1.5))
        )
        assert report.device_failures == 1
        # NVSwitch isolates the failure: survivors keep ~full bandwidth
        # (small residual drift from the ring's (n-1)/n factor at 7 ranks).
        assert report.bandwidth_retention == pytest.approx(1.0, rel=0.02)
        assert report.bandwidth_retention > 6 / 7

    def test_total_outage_fails_remaining(self):
        plan = FaultPlan()
        for device in range(8):
            plan.fail_device(device, at=0.5)
        report = run_chaos(_config(plan=plan, num_requests=32))
        assert report.alive_devices == 0
        assert report.failed_requests > 0
        assert report.finished_requests + report.failed_requests == 32
        assert dict(report.shed_reasons)["outage"] == report.failed_requests

    def test_total_outage_with_recovery_waits_it_out(self):
        plan = FaultPlan()
        for device in range(8):
            plan.fail_device(device, at=0.5)
        plan.fail_device(7, at=0.6, recover_at=1.0)
        report = run_chaos(_config(plan=plan, num_requests=32))
        assert report.failed_requests == 0
        assert report.finished_requests == 32
        assert report.alive_devices == 1

    def test_tp1_runs_without_fabric(self):
        report = run_chaos(_config(tp=1, num_requests=16))
        assert report.healthy_allreduce_bw == 0.0
        assert report.finished_requests == 16


class TestGracefulEngine:
    def _engine(self, device, policy, injector=None, blocks=64, max_batch=4):
        return LlmServingEngine(
            LlamaCostModel(LLAMA_3_1_8B, device),
            DecodeAttention.PAGED_OPT,
            max_decode_batch=max_batch,
            num_kv_blocks=blocks,
            policy=policy,
            injector=injector,
        )

    def test_oversized_request_shed_not_crash(self, gaudi):
        engine = self._engine(gaudi, ResiliencePolicy(), blocks=4)
        requests = fixed_length_requests(1, input_len=128, output_len=4)
        requests += fixed_length_requests(1, input_len=10_000, output_len=4)
        requests[1].request_id = 1
        report = engine.run(requests)
        assert report.finished_requests == 1
        assert report.shed_requests == 1
        assert requests[1].state is RequestState.SHED
        assert "oversized" in requests[1].shed_reason
        # latency means are over the finished partition only
        assert report.mean_ttft == pytest.approx(requests[0].ttft)

    def test_deadline_retry_then_shed(self, gaudi):
        policy = ResiliencePolicy(
            deadline=1e-4,
            retry=RetryPolicy(max_retries=2, backoff_base=0.05),
        )
        engine = self._engine(gaudi, policy, blocks=8, max_batch=1)
        requests = fixed_length_requests(3, input_len=512, output_len=64)
        report = engine.run(requests)
        shed = [r for r in requests if r.state is RequestState.SHED]
        assert report.retried_requests > 0
        assert shed and all(r.retries == 2 for r in shed)
        assert all("deadline" in r.shed_reason for r in shed)

    def test_strict_mode_unchanged(self, gaudi):
        from repro.serving import KvCacheError

        engine = self._engine(gaudi, policy=None, blocks=4)
        with pytest.raises(KvCacheError):
            engine.run(fixed_length_requests(1, input_len=10_000, output_len=4))


class TestResilientLoadgen:
    def test_overload_sheds_and_reports_goodput(self, gaudi):
        def engine_factory():
            return LlmServingEngine(
                LlamaCostModel(LLAMA_3_1_8B, gaudi),
                DecodeAttention.PAGED_OPT,
                max_decode_batch=2,
                num_kv_blocks=32,
                policy=ResiliencePolicy(
                    deadline=0.05, retry=RetryPolicy(max_retries=1)
                ),
            )

        report = run_resilient_load_test(
            engine_factory,
            lambda: fixed_length_requests(24, input_len=256, output_len=32),
            offered_rate=400.0,
        )
        assert report.shed > 0
        assert report.retried > 0
        assert report.finished + report.shed + report.failed == 24
        assert 0.0 <= report.goodput_fraction < 1.0
        assert report.slo_violation_rate > 0.0

    def test_goodput_full_when_unloaded(self, gaudi):
        def engine_factory():
            return LlmServingEngine(
                LlamaCostModel(LLAMA_3_1_8B, gaudi),
                DecodeAttention.PAGED_OPT,
                max_decode_batch=8,
                policy=ResiliencePolicy(),
            )

        report = run_resilient_load_test(
            engine_factory,
            lambda: fixed_length_requests(8, input_len=128, output_len=16),
            offered_rate=1.0,
        )
        assert report.finished == 8
        assert report.goodput_fraction == pytest.approx(1.0)
        assert report.slo_violation_rate == 0.0


class TestChaosCli:
    def test_chaos_verb_renders_report(self, capsys):
        from repro.cli import main

        assert main([
            "chaos", "--seed", "0", "--fail-device", "3@t=0.5",
            "--requests", "32", "--tp", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "Resilience report" in out
        assert "device-fail dev3" in out
        assert "Fig. 10 port model" in out

    def test_chaos_json(self, capsys):
        import json

        from repro.cli import main

        assert main([
            "chaos", "--seed", "0", "--requests", "8", "--tp", "2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["finished_requests"] == 8
        assert payload["tp_degree"] == 2
