"""Figure 8: STREAM ADD/SCALE/TRIAD characterization."""

import pytest

from repro.figures import run_figure


def test_fig08_stream(benchmark, save_figure):
    result = benchmark.pedantic(
        run_figure, args=("fig08",), kwargs={"fast": True}, rounds=1, iterations=1
    )
    save_figure(result)
    # Paper: chip saturation at ~330/530/670 GFLOPS; SCALE gains most
    # from unrolling; 50 %/99 % intensity saturation split.
    assert result.summary["chip_saturation_gflops_add"] == pytest.approx(330, rel=0.1)
    assert result.summary["chip_saturation_gflops_scale"] == pytest.approx(530, rel=0.1)
    assert result.summary["chip_saturation_gflops_triad"] == pytest.approx(670, rel=0.1)
    assert result.summary["unroll_gain_scale"] > result.summary["unroll_gain_add"]
    assert result.summary["intensity_sat_util_triad_gaudi"] > 0.9
    assert result.summary["intensity_sat_util_add_a100"] == pytest.approx(0.5, abs=0.07)
