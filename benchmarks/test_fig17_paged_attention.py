"""Figure 17: PagedAttention + end-to-end vLLM serving."""

import pytest

from repro.figures import run_figure


def test_fig17_paged_attention(benchmark, save_figure):
    result = benchmark.pedantic(
        run_figure, args=("fig17",), kwargs={"fast": False}, rounds=1, iterations=1
    )
    save_figure(result)
    # Paper: 7.4x average opt-over-base speedup (up to 55.7x with
    # padding); ~45 % of the A100 kernel; comparable e2e throughput.
    assert 4.5 < result.summary["opt_over_base_mean"] < 9.0
    assert 30 < result.summary["opt_over_base_max_padding"] < 70
    assert result.summary["opt_vs_a100_mean"] == pytest.approx(0.45, abs=0.12)
    assert 0.8 < result.summary["e2e_throughput_ratio"] < 1.6
    assert result.summary["e2e_tpot_rises_with_batch"] == 1.0
