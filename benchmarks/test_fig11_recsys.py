"""Figure 11: RecSys RM1/RM2 performance and energy efficiency."""

from repro.figures import run_figure


def test_fig11_recsys(benchmark, save_figure):
    result = benchmark.pedantic(
        run_figure, args=("fig11",), kwargs={"fast": False}, rounds=1, iterations=1
    )
    save_figure(result)
    # Paper: average slowdowns (RM1 -22 %, RM2 -18 %; our model is
    # milder -- see EXPERIMENTS.md), max ~1.36x at wide vectors, down to
    # ~0.3x at small vectors, and an energy-efficiency deficit.
    assert result.summary["rm1_mean_speedup"] < 1.0
    assert result.summary["rm2_mean_speedup"] < 1.0
    assert 1.2 < result.summary["max_speedup"] < 1.5
    assert result.summary["rm2_min_speedup_small_vectors"] < 0.65
    assert result.summary["mean_energy_efficiency"] < 1.0
