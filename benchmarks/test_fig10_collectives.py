"""Figure 10: collective-communication bus bandwidth."""

from repro.figures import run_figure


def test_fig10_collectives(benchmark, save_figure):
    result = benchmark.pedantic(
        run_figure, args=("fig10",), kwargs={"fast": False}, rounds=1, iterations=1
    )
    save_figure(result)
    # Paper: Gaudi wins 5 of 6 collectives at 8 devices; busBW declines
    # almost linearly with fewer devices; A100 stays flat.
    assert result.summary["gaudi_wins_of_6_at_8_devices"] == 5.0
    assert result.summary["gaudi_busbw_scales_with_devices"] == 1.0
    assert result.summary["gaudi_allreduce_util_2dev"] < 0.2
    assert result.summary["a100_allreduce_util_2dev"] > 0.5
