"""Extension benches: Gaudi-3 projection and the training scenario.

Both are the paper's own forward pointers -- footnote 1 (Gaudi-3) and
the Section 5 future work (training) -- run on the same device models.
"""

from repro.core.report import render_table
from repro.hw.device import get_device
from repro.models.llama import LLAMA_3_1_8B, LlamaCostModel
from repro.models.training import LlamaTrainingCostModel


def _gaudi3_serving_rows():
    rows = []
    a100 = get_device("a100")
    for name in ("gaudi2", "gaudi3"):
        device = get_device(name)
        rows_for_device = []
        for batch, out in ((16, 100), (64, 400)):
            est = LlamaCostModel(LLAMA_3_1_8B, device).generate(batch, 100, out)
            ref = LlamaCostModel(LLAMA_3_1_8B, a100).generate(batch, 100, out)
            rows_for_device.append(ref.total_time / est.total_time)
        rows.append((device.name,
                     f"{rows_for_device[0]:.2f}x", f"{rows_for_device[1]:.2f}x"))
    return rows


def test_extension_gaudi3_projection(benchmark, results_dir):
    rows = benchmark.pedantic(_gaudi3_serving_rows, rounds=1, iterations=1)
    text = render_table(
        ["Device", "Speedup vs A100 (b16/o100)", "Speedup vs A100 (b64/o400)"],
        rows,
        title="Extension: Gaudi-3 projection, Llama-3.1-8B serving",
    )
    (results_dir / "extension_gaudi3.txt").write_text(text + "\n")
    print("\n" + text)
    g2 = float(rows[0][1][:-1])
    g3 = float(rows[1][1][:-1])
    assert g3 > 1.5 * g2  # the announced compute/bandwidth scaling shows


def _training_rows():
    rows = []
    for name in ("gaudi2", "a100", "gaudi3"):
        device = get_device(name)
        step = LlamaTrainingCostModel(LLAMA_3_1_8B, device, data_parallel=8).step(
            global_batch=128, seq_len=4096
        )
        rows.append((
            device.name,
            f"{step.step_time * 1e3:.0f}",
            f"{step.tokens_per_second:.0f}",
            f"{step.model_flops_utilization:.1%}",
            f"{step.energy_per_token * 1e3:.2f}",
        ))
    return rows


def test_extension_training_step(benchmark, results_dir):
    rows = benchmark.pedantic(_training_rows, rounds=1, iterations=1)
    text = render_table(
        ["Device", "Step (ms)", "Tokens/s (node)", "MFU", "mJ/token"],
        rows,
        title="Extension: Llama-3.1-8B training step, 8-way data parallel",
    )
    (results_dir / "extension_training.txt").write_text(text + "\n")
    print("\n" + text)
    by_device = {r[0]: float(r[1]) for r in rows}
    # Section 5's claim under the model: Gaudi-2 competitive at a full
    # node, where its interconnect runs at full strength.
    assert by_device["Gaudi-2"] < by_device["A100"]
    assert by_device["Gaudi-3"] < by_device["Gaudi-2"]
