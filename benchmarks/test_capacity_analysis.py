"""The Section 4.2 motivation, as a bench: static vs paged KV capacity.

vLLM's pitch -- and the reason the paper invests in Gaudi
PagedAttention -- is that variable-length requests fragment a
statically pre-allocated KV cache, capping batch size.  This bench
quantifies the capacity multiplier on both devices' HBM budgets.
"""

from repro.core.report import render_table
from repro.hw.device import get_device
from repro.models.llama import LLAMA_3_1_8B, LlamaCostModel
from repro.serving import compare_capacity
from repro.serving.dataset import dynamic_sonnet_requests


def _capacity_rows():
    rows = []
    requests = dynamic_sonnet_requests(8192, seed=11)
    for device_name in ("gaudi2", "a100"):
        device = get_device(device_name)
        model = LlamaCostModel(LLAMA_3_1_8B, device)
        report = compare_capacity(LLAMA_3_1_8B, model, requests, max_model_len=4096)
        rows.append((
            device.name,
            f"{report.kv_pool_tokens / 1e6:.2f}M",
            report.static_capacity,
            report.paged_capacity,
            f"{report.capacity_gain:.1f}x",
        ))
    return rows


def test_capacity_static_vs_paged(benchmark, results_dir):
    rows = benchmark.pedantic(_capacity_rows, rounds=1, iterations=1)
    text = render_table(
        ["Device", "KV pool (tokens)", "Static slots", "Paged requests", "Gain"],
        rows,
        title="Section 4.2 motivation: static pre-allocation vs PagedAttention "
              "(Llama-3.1-8B, Dynamic-Sonnet-like mix, max_model_len=4096)",
    )
    (results_dir / "capacity_analysis.txt").write_text(text + "\n")
    print("\n" + text)
    for row in rows:
        gain = float(row[4][:-1])
        assert gain > 2.0  # paged fits several times more requests
    # Gaudi's 96 GB HBM holds more KV than the A100's 80 GB.
    assert rows[0][3] > rows[1][3]
