"""Figure 7: MME geometry selection + configurability ablation."""

from repro.figures import run_figure


def test_fig07_mme_geometry(benchmark, save_figure):
    result = benchmark.pedantic(
        run_figure, args=("fig07",), kwargs={"fast": False}, rounds=1, iterations=1
    )
    save_figure(result)
    # Paper: up to ~15 pp utilization gain over the fixed array, several
    # distinct geometries, power-gated configs for small shapes.
    assert 0.08 < result.summary["max_configurability_gain"] < 0.22
    assert result.summary["distinct_geometries"] >= 6
    assert result.summary["num_power_gated_configs"] >= 1
