"""Figure 12: LLM serving speedup heatmaps + latency breakdown."""

from repro.figures import run_figure


def test_fig12_llm_serving(benchmark, save_figure):
    result = benchmark.pedantic(
        run_figure, args=("fig12",), kwargs={"fast": False}, rounds=1, iterations=1
    )
    save_figure(result)
    # Paper: 1.47x average single-device speedup; multi-device speedups
    # of 1.29x/1.32x/1.35x increasing with device count.
    assert 1.25 < result.summary["single_device_mean_speedup"] < 1.6
    assert result.summary["single_device_max_speedup"] > 1.3
    assert (
        result.summary["tp8_mean_speedup"]
        > result.summary["tp4_mean_speedup"]
        > 1.0
    )
