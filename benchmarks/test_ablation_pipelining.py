"""Ablations: graph-compiler pipelining/fusion, and BlockList vs
BlockTable -- the software design choices behind the vLLM case study."""

from repro.core.report import render_table
from repro.graph import Engine, Graph, GraphCompiler
from repro.kernels.paged_attention import (
    PagedAttentionConfig,
    vllm_base_paged_attention,
    vllm_opt_paged_attention,
)


def _layer_graph():
    """A GEMM -> activation -> GEMM -> softmax slice of a decoder."""
    g = Graph("decoder-slice")
    qk = g.add_op("qk_gemm", Engine.MME, 120e-6, 4e6, 8e6, sliceable=True)
    sm = g.add_op("softmax", Engine.TPC, 50e-6, 8e6, 8e6, inputs=[qk],
                  fusable=True, sliceable=True)
    scale = g.add_op("scale", Engine.TPC, 10e-6, 8e6, 8e6, inputs=[sm],
                     fusable=True, sliceable=True)
    g.add_op("pv_gemm", Engine.MME, 110e-6, 8e6, 4e6, inputs=[scale],
             sliceable=True)
    return g


def _compile_variants():
    variants = {
        "fusion+pipelining": GraphCompiler(),
        "fusion only": GraphCompiler(enable_pipelining=False),
        "pipelining only": GraphCompiler(enable_fusion=False),
        "neither": GraphCompiler(enable_fusion=False, enable_pipelining=False),
    }
    return {name: c.compile(_layer_graph()).total_time for name, c in variants.items()}


def test_ablation_graph_compiler_passes(benchmark, results_dir):
    times = benchmark.pedantic(_compile_variants, rounds=1, iterations=1)
    rows = [(name, f"{t * 1e6:.1f}") for name, t in sorted(times.items(), key=lambda kv: kv[1])]
    text = render_table(["Pass configuration", "Slice time (us)"], rows,
                        title="Ablation: graph-compiler optimization passes")
    (results_dir / "ablation_compiler_passes.txt").write_text(text + "\n")
    print("\n" + text)
    assert times["fusion+pipelining"] < times["fusion only"] < times["neither"]
    assert times["fusion+pipelining"] < times["pipelining only"]


def _blocklist_vs_blocktable():
    rows = []
    for padding_label, seq_lens in (
        ("0%", [2048] * 16),
        ("~50%", [2048] + [1024] * 15),
        ("~90%", [2048] + [256] * 15),
    ):
        config = PagedAttentionConfig(batch=16, seq_lens=seq_lens,
                                      q_heads=32, kv_heads=8, head_dim=128)
        base = vllm_base_paged_attention(config).time
        opt = vllm_opt_paged_attention(config).time
        rows.append((padding_label, f"{config.padding_fraction:.0%}",
                     f"{base / opt:.1f}x"))
    return rows


def test_ablation_blocklist_vs_blocktable(benchmark, results_dir):
    rows = benchmark.pedantic(_blocklist_vs_blocktable, rounds=1, iterations=1)
    text = render_table(
        ["Nominal padding", "Actual padding", "BlockList speedup"],
        rows,
        title="Ablation: BlockList (opt) vs BlockTable (base) PagedAttention",
    )
    (results_dir / "ablation_blocklist.txt").write_text(text + "\n")
    print("\n" + text)
    speedups = [float(r[2][:-1]) for r in rows]
    assert speedups == sorted(speedups)  # padding amplifies the gap
    assert speedups[0] > 3.0
