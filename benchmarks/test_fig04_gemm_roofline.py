"""Figure 4: GEMM roofline (square + irregular shapes, both devices)."""

import pytest

from repro.figures import run_figure


def test_fig04_gemm_roofline(benchmark, save_figure):
    result = benchmark.pedantic(
        run_figure, args=("fig04",), kwargs={"fast": False}, rounds=1, iterations=1
    )
    save_figure(result)
    # Paper: 429 TFLOPS / 99.3 % of peak at M=K=N=8192 (here 16384 tops
    # the sweep, slightly above), and Gaudi-2 wins every square shape.
    assert result.summary["gaudi_peak_tflops_largest_square"] == pytest.approx(430, abs=6)
    assert result.summary["gaudi_peak_utilization_largest_square"] > 0.99
    assert result.summary["gaudi_wins_all_square_shapes"] == 1.0
