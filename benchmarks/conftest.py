"""Benchmark-harness helpers.

Each benchmark regenerates one paper table/figure, saves the rendered
rows/series under ``benchmarks/results/``, and asserts the headline
values stay in their calibration bands (see EXPERIMENTS.md).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_figure(results_dir):
    """Persist a FigureResult's text report and echo it to stdout."""

    def _save(result):
        path = results_dir / f"{result.figure_id}.txt"
        path.write_text(result.text + "\n")
        print(f"\n[{result.figure_id}] {result.title}")
        for key, value in result.summary.items():
            print(f"  {key} = {value:.4g}")
        return path

    return _save
