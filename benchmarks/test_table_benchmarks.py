"""Tables 1 and 2: spec comparison and microbenchmark inventory."""

from repro.figures import run_figure


def test_table1_spec_comparison(benchmark, save_figure):
    result = benchmark.pedantic(
        run_figure, args=("table1",), kwargs={"fast": True}, rounds=3, iterations=1
    )
    save_figure(result)
    import pytest

    assert result.summary["matrix_tflops_ratio"] == pytest.approx(432 / 312)
    assert result.summary["power_ratio"] == 1.5


def test_table2_microbenchmark_inventory(benchmark, save_figure):
    result = benchmark.pedantic(
        run_figure, args=("table2",), kwargs={"fast": True}, rounds=3, iterations=1
    )
    save_figure(result)
    assert result.summary["num_microbenchmarks"] == 4
