"""Figure 5: GEMM compute-utilization heatmaps."""

from repro.figures import run_figure


def test_fig05_gemm_utilization(benchmark, save_figure):
    result = benchmark.pedantic(
        run_figure, args=("fig05",), kwargs={"fast": False}, rounds=1, iterations=1
    )
    save_figure(result)
    # Paper: Gaudi-2 averages higher compute utilization (4.5 pp; our
    # model lands higher -- see EXPERIMENTS.md) with a mid-size maximum.
    assert 0.0 < result.summary["mean_square_utilization_delta"] < 0.25
    assert 0.1 < result.summary["max_square_utilization_delta"] < 0.35
