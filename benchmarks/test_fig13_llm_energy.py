"""Figure 13: LLM serving energy-efficiency heatmaps."""

import pytest

from repro.figures import run_figure


def test_fig13_llm_energy(benchmark, save_figure):
    result = benchmark.pedantic(
        run_figure, args=("fig13",), kwargs={"fast": False}, rounds=1, iterations=1
    )
    save_figure(result)
    # Paper: ~1.48x single-device energy efficiency; ~0.88x power and
    # ~1.5x energy efficiency in multi-device serving.
    assert 1.3 < result.summary["single_device_mean_energy_efficiency"] < 1.7
    assert result.summary["single_device_mean_power_ratio"] == pytest.approx(1.0, abs=0.12)
    assert result.summary["multi_device_mean_power_ratio"] == pytest.approx(0.88, abs=0.08)
    assert result.summary["multi_device_mean_energy_efficiency"] > 1.3
