"""Figure 9: vector gather/scatter bandwidth utilization."""

import pytest

from repro.figures import run_figure


def test_fig09_gather_scatter(benchmark, save_figure):
    result = benchmark.pedantic(
        run_figure, args=("fig09",), kwargs={"fast": False}, rounds=1, iterations=1
    )
    save_figure(result)
    # Paper: Gaudi 64 %/15 % for large/small gathers vs A100 72 %/36 %.
    assert result.summary["gaudi_gather_util_large"] == pytest.approx(0.64, abs=0.07)
    assert result.summary["a100_gather_util_large"] == pytest.approx(0.72, abs=0.05)
    assert result.summary["gaudi_gather_util_small"] == pytest.approx(0.15, abs=0.05)
    assert result.summary["a100_gather_util_small"] == pytest.approx(0.36, abs=0.07)
    assert result.summary["small_vector_gap"] == pytest.approx(2.4, abs=0.8)
