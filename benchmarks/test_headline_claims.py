"""Headline scalar claims: the paper's quotable numbers in one table."""

from repro.figures import run_figure


def test_headline_claims(benchmark, save_figure):
    result = benchmark.pedantic(
        run_figure, args=("headline",), kwargs={"fast": True}, rounds=1, iterations=1
    )
    save_figure(result)
    measured = result.summary
    assert measured["llm_single_device_speedup"] > 1.0
    assert measured["recsys_mean_speedup"] < 1.0
    assert measured["vllm_opt_over_base"] > 4.0
    assert measured["sdk_embedding_vs_a100"] < 0.55
