"""Ablation: MME reconfigurability ON vs OFF.

The design-choice ablation DESIGN.md calls out (it is Figure 7(c) in
the paper): how much the runtime-selectable geometry buys over a fixed
256x256x2 output-stationary array with the same peak FLOPS, across the
GEMM shapes the serving workloads actually issue.
"""

import statistics

from repro.core.report import render_table
from repro.hw.device import Gaudi2Device

#: Shapes drawn from the evaluated workloads: decode GEMMs (skinny M),
#: prefill GEMMs (fat), DLRM MLP layers, and the lm-head.
_WORKLOAD_SHAPES = (
    (16, 4096, 14336),     # 8B decode MLP, small batch
    (64, 4096, 14336),     # 8B decode MLP, large batch
    (6400, 4096, 6144),    # 8B prefill QKV
    (16384, 8192, 28672),  # 70B prefill MLP
    (4096, 704, 512),      # RM1 DCNv2 cross layer
    (64, 4096, 128256),    # lm head at decode
    (16384, 16384, 64),    # tall-skinny extreme
)


def _geomean_gain():
    flexible = Gaudi2Device(mme_configurable=True)
    fixed = Gaudi2Device(mme_configurable=False)
    rows = []
    gains = []
    for m, k, n in _WORKLOAD_SHAPES:
        t_flex = flexible.gemm(m, k, n).time
        t_fixed = fixed.gemm(m, k, n).time
        gains.append(t_fixed / t_flex)
        rows.append((f"{m}x{k}x{n}", f"{t_fixed / t_flex:.2f}x",
                     flexible.gemm(m, k, n).config_label))
    return statistics.geometric_mean(gains), rows


def test_ablation_mme_configurability(benchmark, results_dir):
    gain, rows = benchmark.pedantic(_geomean_gain, rounds=1, iterations=1)
    text = render_table(
        ["GEMM shape", "Configurable/fixed speedup", "Chosen geometry"],
        rows,
        title="Ablation: MME reconfigurability over workload GEMM shapes",
    )
    (results_dir / "ablation_mme_config.txt").write_text(text + "\n")
    print("\n" + text)
    # Reconfigurability must never hurt and must help somewhere.
    assert gain >= 1.0
    assert max(float(r[1][:-1]) for r in rows) > 1.1
