"""Figure 15: embedding-lookup operators (Section 4.1 case study)."""

import pytest

from repro.figures import run_figure


def test_fig15_embedding(benchmark, save_figure):
    result = benchmark.pedantic(
        run_figure, args=("fig15",), kwargs={"fast": False}, rounds=1, iterations=1
    )
    save_figure(result)
    # Paper: BatchedTable peaks at ~70 % utilization, improves on
    # SingleTable by ~1.5x on average, reaches ~95 % of A100 for large
    # vectors but ~47 % below 256 B.
    assert result.summary["batched_peak_utilization"] == pytest.approx(0.70, abs=0.07)
    assert result.summary["batched_over_single_mean"] > 1.4
    assert result.summary["batched_vs_a100_large_vectors"] == pytest.approx(0.9, abs=0.15)
    assert result.summary["batched_vs_a100_small_vectors"] == pytest.approx(0.47, abs=0.15)
